/**
 * @file
 * Tests for the MORC log-structured compressed cache.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/morc.hh"
#include "util/rng.hh"

namespace morc {
namespace core {
namespace {

CacheLine
zeroLine()
{
    return CacheLine{};
}

CacheLine
randomLine(Rng &rng)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, static_cast<std::uint32_t>(rng.next()));
    return l;
}

CacheLine
pooledLine(Rng &rng, const std::uint32_t *pool, unsigned n)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, pool[rng.below(n)]);
    return l;
}

TEST(Morc, MissThenHitRoundTrip)
{
    LogCache c;
    Rng rng(1);
    const Addr a = 0x4000;
    EXPECT_FALSE(c.read(a).hit);
    const CacheLine l = randomLine(rng);
    c.insert(a, l, false);
    auto r = c.read(a);
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(r.data, l);
}

TEST(Morc, DecompressionLatencyGrowsWithLogPosition)
{
    LogCache c;
    Rng rng(2);
    // Incompressible lines land in the same handful of active logs; a
    // line appended later in a log costs more cycles to reach.
    std::vector<Addr> addrs;
    std::vector<std::uint32_t> latencies;
    for (Addr i = 0; i < 40; i++) {
        const Addr a = i << kLineShift;
        addrs.push_back(a);
        c.insert(a, randomLine(rng), false);
    }
    for (Addr a : addrs) {
        auto r = c.read(a);
        ASSERT_TRUE(r.hit);
        latencies.push_back(r.extraLatency);
    }
    std::uint32_t lo = ~0u, hi = 0;
    for (auto v : latencies) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GT(hi, lo + 5); // position-dependence is visible
}

TEST(Morc, ZeroDataReachesLmtCap)
{
    LogCache c;
    for (Addr a = 0; a < 400000; a++)
        c.insert(a << kLineShift, zeroLine(), false);
    // All-zero lines compress to ~10 bits; the limit is the 8x LMT.
    EXPECT_GT(c.compressionRatio(), 5.0);
    EXPECT_LE(c.compressionRatio(), 8.01);
}

TEST(Morc, RandomDataStaysNearOne)
{
    LogCache c;
    Rng rng(3);
    for (Addr a = 0; a < 20000; a++)
        c.insert(a << kLineShift, randomLine(rng), false);
    EXPECT_LT(c.compressionRatio(), 1.1);
    EXPECT_GT(c.compressionRatio(), 0.75);
}

TEST(Morc, InterLineDuplicationBeatsIntraOnlySchemes)
{
    LogCache c;
    Rng rng(4);
    std::uint32_t pool[32];
    for (auto &p : pool)
        p = static_cast<std::uint32_t>(rng.next());
    for (Addr a = 0; a < 100000; a++)
        c.insert(a << kLineShift, pooledLine(rng, pool, 32), false);
    // Words repeat across lines, not within a line's 4-byte alignment
    // pattern; MORC's shared dictionary captures it.
    EXPECT_GT(c.compressionRatio(), 2.5);
}

TEST(Morc, WritebackInvalidatesOldCopy)
{
    LogCache c;
    Rng rng(5);
    const Addr a = 0x40;
    const CacheLine v1 = randomLine(rng);
    const CacheLine v2 = randomLine(rng);
    c.insert(a, v1, false);
    c.insert(a, v2, true); // write-back re-appends
    auto r = c.read(a);
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(r.data, v2);
    EXPECT_EQ(c.validLines(), 1u);
    EXPECT_GT(c.invalidLineFraction(), 0.0);
}

TEST(Morc, ModifiedLinesWriteBackOnFlush)
{
    MorcConfig cfg;
    cfg.capacityBytes = 8 * 1024; // small cache: frequent flushes
    cfg.activeLogs = 2;
    LogCache c(cfg);
    Rng rng(6);
    std::map<Addr, CacheLine> dirty;
    std::uint64_t wb_count = 0;
    for (int i = 0; i < 4000; i++) {
        const Addr a = rng.below(1024) << kLineShift;
        const CacheLine l = randomLine(rng);
        dirty[a] = l;
        auto result = c.insert(a, l, true);
        for (const auto &wb : result.writebacks) {
            wb_count++;
            ASSERT_EQ(wb.data, dirty[wb.addr]) << "stale write-back data";
        }
    }
    EXPECT_GT(wb_count, 0u);
    EXPECT_GT(c.logFlushes(), 0u);
}

TEST(Morc, CleanLinesAreDroppedSilently)
{
    MorcConfig cfg;
    cfg.capacityBytes = 8 * 1024;
    cfg.activeLogs = 2;
    LogCache c(cfg);
    Rng rng(7);
    std::uint64_t wbs = 0;
    for (int i = 0; i < 4000; i++) {
        const Addr a = rng.below(4096) << kLineShift;
        wbs += c.insert(a, randomLine(rng), false).writebacks.size();
    }
    EXPECT_EQ(wbs, 0u); // nothing dirty, nothing written back
    EXPECT_GT(c.logFlushes(), 0u);
}

TEST(Morc, FunctionalAgainstReferenceMemory)
{
    MorcConfig cfg;
    cfg.capacityBytes = 32 * 1024;
    LogCache c(cfg);
    std::map<Addr, CacheLine> memory;
    Rng rng(8);
    std::uint32_t pool[16];
    for (auto &p : pool)
        p = static_cast<std::uint32_t>(rng.next());
    for (int i = 0; i < 30000; i++) {
        const Addr a = rng.below(2048) << kLineShift;
        if (rng.chance(0.5)) {
            const CacheLine l = pooledLine(rng, pool, 16);
            memory[a] = l;
            for (const auto &wb : c.insert(a, l, true).writebacks)
                ASSERT_EQ(wb.data, memory[wb.addr]);
        } else {
            auto r = c.read(a);
            if (r.hit) {
                ASSERT_EQ(r.data, memory[a]);
            }
        }
    }
}

TEST(Morc, LogReuseAvoidsFlushes)
{
    MorcConfig cfg;
    cfg.capacityBytes = 16 * 1024;
    cfg.activeLogs = 2;
    LogCache c(cfg);
    Rng rng(9);
    // Repeatedly overwrite a tiny footprint: old copies invalidate, so
    // closed logs become all-invalid and are reused without flushing.
    for (int i = 0; i < 20000; i++) {
        const Addr a = rng.below(32) << kLineShift;
        c.insert(a, randomLine(rng), true);
    }
    EXPECT_GT(c.logReuses(), 0u);
}

TEST(Morc, LmtConflictEvictions)
{
    MorcConfig cfg;
    cfg.capacityBytes = 8 * 1024;
    cfg.lmtFactor = 1; // deliberately tight LMT
    cfg.lmtWays = 1;
    LogCache c(cfg);
    for (Addr a = 0; a < 2000; a++)
        c.insert(a << kLineShift, zeroLine(), false);
    EXPECT_GT(c.lmtConflictEvictions(), 0u);
}

TEST(Morc, TwoWayLmtReducesConflicts)
{
    auto run = [](unsigned ways) {
        MorcConfig cfg;
        cfg.capacityBytes = 16 * 1024;
        cfg.lmtFactor = 2;
        cfg.lmtWays = ways;
        LogCache c(cfg);
        Rng rng(ways);
        for (int i = 0; i < 30000; i++)
            c.insert(rng.below(400) << kLineShift, zeroLine(), false);
        return c.lmtConflictEvictions();
    };
    EXPECT_LT(run(2), run(1));
}

TEST(Morc, AliasedMissesAreCountedAndMiss)
{
    MorcConfig cfg;
    cfg.capacityBytes = 8 * 1024;
    cfg.lmtFactor = 1;
    cfg.lmtWays = 1;
    LogCache c(cfg);
    Rng rng(10);
    for (Addr a = 0; a < 500; a++)
        c.insert(a << kLineShift, zeroLine(), false);
    std::uint64_t misses = 0;
    for (Addr a = 100000; a < 101000; a++) {
        if (!c.read(a << kLineShift).hit)
            misses++;
    }
    EXPECT_EQ(misses, 1000u); // absent lines never falsely hit
    EXPECT_GT(c.lmtAliasedMisses(), 0u);
}

TEST(Morc, MergedTagsFitWithinLog)
{
    MorcConfig cfg;
    cfg.mergedTags = true;
    LogCache c(cfg);
    Rng rng(11);
    for (Addr a = 0; a < 50000; a++)
        c.insert(a << kLineShift, zeroLine(), false);
    EXPECT_GT(c.compressionRatio(), 3.0);
    // Merged storage must never exceed the physical log space: the
    // invariant is enforced internally; ratio stays below the LMT cap.
    EXPECT_LE(c.compressionRatio(), 8.01);
}

TEST(Morc, MergedSlightlyBelowSeparateOnMixedData)
{
    Rng rng(12);
    std::uint32_t pool[64];
    for (auto &p : pool)
        p = static_cast<std::uint32_t>(rng.next());

    auto run = [&](bool merged) {
        MorcConfig cfg;
        cfg.mergedTags = merged;
        LogCache c(cfg);
        Rng r2(13);
        for (Addr a = 0; a < 60000; a++)
            c.insert(a << kLineShift, pooledLine(r2, pool, 64), false);
        return c.compressionRatio();
    };
    const double separate = run(false);
    const double merged = run(true);
    EXPECT_GT(merged, separate * 0.75); // small sacrifice only
}

TEST(Morc, CompressionDisabledStoresRaw)
{
    MorcConfig cfg;
    cfg.compressionEnabled = false;
    LogCache c(cfg);
    for (Addr a = 0; a < 10000; a++)
        c.insert(a << kLineShift, zeroLine(), false);
    EXPECT_LE(c.compressionRatio(), 1.01);
}

TEST(Morc, UnlimitedMetaLiftsLmtCap)
{
    MorcConfig cfg;
    cfg.unlimitedMeta = true;
    LogCache c(cfg);
    for (Addr a = 0; a < 600000; a++)
        c.insert(a << kLineShift, zeroLine(), false);
    EXPECT_GT(c.compressionRatio(), 10.0); // beyond the 8x LMT limit
}

TEST(Morc, MoreActiveLogsHelpMixedStreams)
{
    // Two interleaved data types: multi-log separates them into
    // type-specific streams and compresses better than a single log.
    auto run = [](unsigned logs) {
        MorcConfig cfg;
        cfg.activeLogs = logs;
        cfg.unlimitedMeta = true;
        LogCache c(cfg);
        Rng rng(14);
        std::uint32_t pool_a[8], pool_b[8];
        for (auto &p : pool_a)
            p = static_cast<std::uint32_t>(rng.next());
        for (auto &p : pool_b)
            p = static_cast<std::uint32_t>(rng.next());
        for (Addr a = 0; a < 40000; a++) {
            CacheLine l = (a & 1) ? pooledLine(rng, pool_a, 8)
                                  : pooledLine(rng, pool_b, 8);
            c.insert(a << kLineShift, l, false);
        }
        return c.compressionRatio();
    };
    EXPECT_GE(run(8), run(1) * 0.95); // never materially worse
}

TEST(Morc, LbeStatsAggregate)
{
    LogCache c;
    for (Addr a = 0; a < 1000; a++)
        c.insert(a << kLineShift, zeroLine(), false);
    const auto stats = c.lbeStats();
    EXPECT_GT(stats.count[static_cast<int>(comp::LbeSymbol::Z256)], 0u);
}

TEST(Morc, InvalidFractionTracksWritebacks)
{
    MorcConfig cfg;
    cfg.compressionEnabled = false; // as in the Figure 12 methodology
    LogCache c(cfg);
    Rng rng(15);
    for (int i = 0; i < 20000; i++)
        c.insert(rng.below(512) << kLineShift, zeroLine(), true);
    EXPECT_GT(c.invalidLineFraction(), 0.05);
    EXPECT_LT(c.invalidLineFraction(), 0.95);
}

/** Parameterized sweep over log sizes and active-log counts: the cache
 *  must stay functional and bounded in every configuration. */
class MorcGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(MorcGeometry, FunctionalAndBounded)
{
    MorcConfig cfg;
    cfg.logBytes = std::get<0>(GetParam());
    cfg.activeLogs = std::get<1>(GetParam());
    cfg.capacityBytes = 128 * 1024;
    LogCache c(cfg);
    std::map<Addr, CacheLine> memory;
    Rng rng(cfg.logBytes + cfg.activeLogs);
    std::uint32_t pool[16];
    for (auto &p : pool)
        p = static_cast<std::uint32_t>(rng.next());
    for (int i = 0; i < 15000; i++) {
        const Addr a = rng.below(8192) << kLineShift;
        if (rng.chance(0.6)) {
            const CacheLine l = pooledLine(rng, pool, 16);
            memory[a] = l;
            for (const auto &wb : c.insert(a, l, true).writebacks)
                ASSERT_EQ(wb.data, memory[wb.addr]);
        } else {
            auto r = c.read(a);
            if (r.hit) {
                ASSERT_EQ(r.data, memory[a]);
            }
        }
    }
    EXPECT_LE(c.compressionRatio(), cfg.lmtFactor + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MorcGeometry,
    ::testing::Combine(::testing::Values(64u, 256u, 512u, 2048u),
                       ::testing::Values(1u, 4u, 8u, 16u)));

} // namespace
} // namespace core
} // namespace morc
