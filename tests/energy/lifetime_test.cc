/**
 * @file
 * Unit tests for the L2C2-style NVM wear model: bit-level popcount and
 * flip helpers, the WearTracker histogram (totals, imbalance, variance,
 * merge, snapshot), and the closed-form lifetime forecast.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "energy/lifetime.hh"
#include "snapshot/snapshot.hh"
#include "util/bitstream.hh"
#include "util/rng.hh"

namespace morc {
namespace energy {
namespace {

TEST(LifetimeHelpers, PopcountRespectsBitBounds)
{
    std::vector<std::uint64_t> words = {~0ull, ~0ull};
    EXPECT_EQ(popcountBits(words, 0), 0u);
    EXPECT_EQ(popcountBits(words, 1), 1u);
    EXPECT_EQ(popcountBits(words, 64), 64u);
    EXPECT_EQ(popcountBits(words, 70), 70u);
    EXPECT_EQ(popcountBits(words, 128), 128u);
    EXPECT_EQ(popcountRange(words, 60, 68), 8u);
    EXPECT_EQ(popcountRange(words, 5, 5), 0u);
}

TEST(LifetimeHelpers, FlipBitsXorsWithErasedPadding)
{
    // Old stream: 8 set bits. New stream: 4 of those cleared plus 4
    // freshly set past the old length — the pad region counts as
    // erased (zero) cells.
    std::vector<std::uint64_t> a = {0xffull};
    std::vector<std::uint64_t> b = {0xf0ull | (0xfull << 10)};
    EXPECT_EQ(flipBits(a, 8, b, 14), 4u + 4u);
    EXPECT_EQ(flipBits(a, 8, a, 8), 0u);
    EXPECT_EQ(flipBits({}, 0, b, 14), 8u); // programming erased cells
}

TEST(LifetimeHelpers, LineHelpersMatchManualCounts)
{
    CacheLine zero;
    CacheLine one;
    one.bytes[0] = 0x0f;
    one.bytes[63] = 0x80;
    EXPECT_EQ(linePopcount(zero), 0u);
    EXPECT_EQ(linePopcount(one), 5u);
    EXPECT_EQ(lineFlips(zero, one), 5u);
    EXPECT_EQ(lineFlips(one, one), 0u);

    BitWriter w;
    rawImage(one, w);
    EXPECT_EQ(w.sizeBits(), kLineSize * 8u);
    EXPECT_EQ(popcountBits(w.words(), w.sizeBits()), 5u);
}

TEST(WearTrackerTest, TotalsAndHistograms)
{
    WearTracker t;
    t.configure(4, 2);
    t.recordWrite(0, 0, 512, 100);
    t.recordWrite(0, 1, 256, 50);
    t.recordWrite(3, 0, 128, 10);
    EXPECT_EQ(t.totalWrites(), 3u);
    EXPECT_EQ(t.totalBitsWritten(), 896u);
    EXPECT_EQ(t.totalBitFlips(), 160u);
    EXPECT_EQ(t.setFlips(0), 150u);
    EXPECT_EQ(t.setFlips(1), 0u);
    EXPECT_EQ(t.setFlips(3), 10u);
    EXPECT_EQ(t.frameWrites(0, 0), 1u);
    EXPECT_EQ(t.frameWrites(0, 1), 1u);
    EXPECT_EQ(t.frameWrites(2, 0), 0u);
    EXPECT_DOUBLE_EQ(t.meanSetFlips(), 40.0);
    EXPECT_EQ(t.maxSetFlips(), 150u);
    EXPECT_DOUBLE_EQ(t.imbalance(), 150.0 / 40.0);
    EXPECT_GT(t.setVariance(), 0.0);
}

TEST(WearTrackerTest, IdleTrackerIsPerfectlyLeveled)
{
    WearTracker t;
    t.configure(8, 4);
    EXPECT_DOUBLE_EQ(t.imbalance(), 1.0);
    EXPECT_DOUBLE_EQ(t.setVariance(), 0.0);
    EXPECT_DOUBLE_EQ(t.meanSetFlips(), 0.0);
}

TEST(WearTrackerTest, UniformWritesStayLeveled)
{
    WearTracker t;
    t.configure(16, 1);
    for (std::uint64_t s = 0; s < 16; s++)
        t.recordWrite(s, 0, 512, 200);
    EXPECT_DOUBLE_EQ(t.imbalance(), 1.0);
    EXPECT_DOUBLE_EQ(t.setVariance(), 0.0);
}

TEST(WearTrackerTest, ClearCountsKeepsGeometry)
{
    WearTracker t;
    t.configure(2, 2);
    t.recordWrite(1, 1, 64, 3);
    t.clearCounts();
    EXPECT_EQ(t.sets(), 2u);
    EXPECT_EQ(t.ways(), 2u);
    EXPECT_EQ(t.totalWrites(), 0u);
    EXPECT_EQ(t.totalBitFlips(), 0u);
    EXPECT_EQ(t.setFlips(1), 0u);
    EXPECT_EQ(t.frameWrites(1, 1), 0u);
}

TEST(WearTrackerTest, MergeStacksBankSets)
{
    // Banked LLC composition: each bank's sets become additional sets
    // of the merged device, so the imbalance forecast sees the union.
    WearTracker a;
    a.configure(2, 2);
    a.recordWrite(0, 0, 512, 40);
    WearTracker b;
    b.configure(3, 2);
    b.recordWrite(2, 1, 256, 8);
    a.merge(b);
    EXPECT_EQ(a.sets(), 5u);
    EXPECT_EQ(a.ways(), 2u);
    EXPECT_EQ(a.totalWrites(), 2u);
    EXPECT_EQ(a.totalBitsWritten(), 768u);
    EXPECT_EQ(a.totalBitFlips(), 48u);
    EXPECT_EQ(a.setFlips(0), 40u);
    EXPECT_EQ(a.setFlips(4), 8u);
    EXPECT_EQ(a.frameWrites(4, 1), 1u);
}

TEST(WearTrackerTest, SnapshotRoundTrip)
{
    WearTracker t;
    t.configure(8, 2);
    Rng rng(41);
    for (int i = 0; i < 300; i++)
        t.recordWrite(rng.below(8), rng.below(2), 64 + rng.below(448),
                      rng.below(200));
    snap::Serializer s;
    t.save(s);
    // restore() validates the frame against the already-configured
    // geometry — the owning cache configures before restoring.
    WearTracker r;
    r.configure(8, 2);
    snap::Deserializer d(s.frame());
    r.restore(d);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(r.sets(), t.sets());
    EXPECT_EQ(r.ways(), t.ways());
    EXPECT_EQ(r.totalWrites(), t.totalWrites());
    EXPECT_EQ(r.totalBitsWritten(), t.totalBitsWritten());
    EXPECT_EQ(r.totalBitFlips(), t.totalBitFlips());
    for (std::uint64_t set = 0; set < t.sets(); set++)
        EXPECT_EQ(r.setFlips(set), t.setFlips(set));
    EXPECT_DOUBLE_EQ(r.imbalance(), t.imbalance());
    EXPECT_DOUBLE_EQ(r.setVariance(), t.setVariance());
}

TEST(Forecast, MatchesClosedForm)
{
    // One set twice as hot as the other: imbalance 1.5. Check every
    // forecast output against hand-computed values.
    WearTracker t;
    t.configure(2, 1);
    t.recordWrite(0, 0, 1000, 400);
    t.recordWrite(1, 0, 500, 200);
    t.recordWrite(0, 0, 1000, 400);

    LifetimeParams p;
    p.cellEnduranceWrites = 1.0e6;
    p.clockHz = 1.0e9;
    const std::uint64_t cycles = 2'000'000'000; // 2 simulated seconds
    const std::uint64_t capacity_bits = 1000;
    const auto f = forecastLifetime(t, cycles, capacity_bits, p);

    EXPECT_DOUBLE_EQ(f.writeBitsPerSec, 2500.0 / 2.0);
    EXPECT_DOUBLE_EQ(f.flipsPerCellPerSec, 1000.0 / 1000.0 / 2.0);
    EXPECT_DOUBLE_EQ(f.imbalance, 800.0 / 500.0);
    const double worst = f.flipsPerCellPerSec * f.imbalance;
    EXPECT_DOUBLE_EQ(f.years,
                     1.0e6 / worst / (365.25 * 24 * 3600));
    EXPECT_GT(f.years, 0.0);
    EXPECT_TRUE(std::isfinite(f.years));
}

TEST(Forecast, IdleRunLivesForever)
{
    WearTracker t;
    t.configure(4, 1);
    const auto idle = forecastLifetime(t, 1'000'000, 512 * 1024);
    EXPECT_TRUE(std::isinf(idle.years));
    EXPECT_DOUBLE_EQ(idle.imbalance, 1.0);

    // Zero simulated time is degenerate, not a division crash.
    const auto zeroTime = forecastLifetime(t, 0, 512 * 1024);
    EXPECT_TRUE(std::isinf(zeroTime.years));
}

TEST(Forecast, CompressionReducesWearMonotonically)
{
    // Fewer programmed bits at the same traffic must never shorten the
    // forecast: halve every write's bits/flips and years must grow.
    WearTracker full;
    WearTracker half;
    full.configure(4, 1);
    half.configure(4, 1);
    Rng rng(77);
    for (int i = 0; i < 400; i++) {
        const std::uint64_t set = rng.below(4);
        const std::uint64_t flips = 100 + rng.below(100);
        full.recordWrite(set, 0, 512, flips);
        half.recordWrite(set, 0, 256, flips / 2);
    }
    const auto ff = forecastLifetime(full, 1'000'000'000, 8192);
    const auto fh = forecastLifetime(half, 1'000'000'000, 8192);
    EXPECT_GT(fh.years, ff.years);
    EXPECT_LT(fh.writeBitsPerSec, ff.writeBitsPerSec);
}

} // namespace
} // namespace energy
} // namespace morc
