/**
 * @file
 * Unit and snapshot tests for the KV serving subsystem (src/kv).
 *
 * Covers each layer in isolation — generator QoS arithmetic and drift,
 * value-model purity/versioning/snapshot, tiered-store exclusivity,
 * budget enforcement (including the writeback-growth path where a
 * rewrite compresses worse than what it replaced) — and the acceptance
 * criterion end to end: a mid-run service snapshot restores into a
 * twin that replays the rest of the stream to byte-identical final
 * serialized state.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "kv/generator.hh"
#include "kv/service.hh"
#include "kv/tier.hh"
#include "snapshot/snapshot.hh"
#include "trace/value_model.hh"
#include "util/rng.hh"

namespace morc {
namespace {

// ------------------------------------------------------------------
// Generator
// ------------------------------------------------------------------

std::vector<kv::TenantConfig>
twoTenants()
{
    kv::TenantConfig a;
    a.name = "a";
    a.keys = 1024;
    a.theta = 1.1;
    a.weight = 3;
    a.setFrac = 0.2;
    kv::TenantConfig b;
    b.name = "b";
    b.keys = 2048;
    b.theta = 0.8;
    b.weight = 1;
    b.setFrac = 0.4;
    return {a, b};
}

TEST(KvGenerator, QosSharesAreExactlyProportionalToWeights)
{
    kv::Generator gen(7, twoTenants());
    for (int i = 0; i < 4000; i++)
        gen.next();
    // Smooth weighted round-robin is exact over whole weight cycles:
    // 4000 requests = 1000 cycles of (3 + 1).
    EXPECT_EQ(gen.served(0), 3000u);
    EXPECT_EQ(gen.served(1), 1000u);
    EXPECT_EQ(gen.served(), 4000u);
}

TEST(KvGenerator, StreamsAreDeterministicPerSeed)
{
    kv::Generator g1(7, twoTenants());
    kv::Generator g2(7, twoTenants());
    kv::Generator g3(8, twoTenants());
    bool any_diff = false;
    for (int i = 0; i < 2000; i++) {
        const kv::Request a = g1.next();
        const kv::Request b = g2.next();
        const kv::Request c = g3.next();
        ASSERT_EQ(a.tenant, b.tenant);
        ASSERT_EQ(a.key, b.key);
        ASSERT_EQ(a.isSet, b.isSet);
        any_diff = any_diff || a.key != c.key || a.isSet != c.isSet;
    }
    EXPECT_TRUE(any_diff) << "seed must matter";
}

TEST(KvGenerator, SnapshotResumesTheExactStream)
{
    kv::Generator gen(11, twoTenants());
    for (int i = 0; i < 500; i++)
        gen.next();
    snap::Serializer s;
    gen.save(s);
    const std::vector<std::uint8_t> frame = s.frame();

    std::vector<kv::Request> expect;
    for (int i = 0; i < 300; i++)
        expect.push_back(gen.next());

    kv::Generator twin(999, twoTenants()); // wrong seed: restore wins
    snap::Deserializer d(frame);
    twin.restore(d);
    ASSERT_TRUE(d.ok()) << d.error();
    EXPECT_EQ(twin.served(), 500u);
    for (const kv::Request &e : expect) {
        const kv::Request r = twin.next();
        ASSERT_EQ(r.tenant, e.tenant);
        ASSERT_EQ(r.key, e.key);
        ASSERT_EQ(r.isSet, e.isSet);
    }
}

TEST(KvGenerator, DriftRotatesTheHotWorkingSet)
{
    kv::TenantConfig t;
    t.name = "drift";
    t.keys = 1000;
    t.theta = 2.0; // rank 0 dominates
    t.setFrac = 0.0;
    t.driftPeriod = 100;
    t.driftStride = 7;
    kv::Generator gen(3, {t});

    auto mode = [&](int reqs) {
        std::map<std::uint64_t, int> freq;
        for (int i = 0; i < reqs; i++)
            freq[gen.next().key]++;
        std::uint64_t best = 0;
        int n = -1;
        for (const auto &kv : freq)
            if (kv.second > n) {
                n = kv.second;
                best = kv.first;
            }
        return best;
    };

    const std::uint64_t early = mode(100);
    for (int i = 0; i < 10'000; i++)
        gen.next();
    const std::uint64_t late = mode(100);
    EXPECT_NE(early, late)
        << "after 100 drift periods the hot key must have moved";
}

// ------------------------------------------------------------------
// KvValueModel
// ------------------------------------------------------------------

trace::KvProfile
testProfile()
{
    trace::KvProfile p;
    p.seed = 0x1234;
    return p;
}

std::uint64_t
keyOfClass(const trace::KvValueModel &vm, trace::ValueClass c)
{
    for (std::uint64_t k = 0; k < 100'000; k++)
        if (vm.classOf(k) == c)
            return k;
    ADD_FAILURE() << "no key of class " << trace::valueClassName(c);
    return 0;
}

TEST(KvValueModel, ClassMixTracksTheProfile)
{
    trace::KvValueModel vm(testProfile());
    const std::uint64_t n = 20'000;
    std::uint64_t counts[3] = {0, 0, 0};
    for (std::uint64_t k = 0; k < n; k++) {
        const trace::ValueClass c = vm.classOf(k);
        ASSERT_EQ(c, vm.classOf(k)) << "class must be stable";
        counts[static_cast<int>(c)]++;
    }
    const double jf = double(counts[0]) / n;
    const double cf = double(counts[1]) / n;
    EXPECT_NEAR(jf, testProfile().jsonFrac, 0.03);
    EXPECT_NEAR(cf, testProfile().counterFrac, 0.03);
    // Sizes follow classes.
    trace::KvProfile p = testProfile();
    EXPECT_EQ(vm.valueLines(keyOfClass(vm, trace::ValueClass::JsonLike)),
              p.jsonLines);
    EXPECT_EQ(vm.valueLines(keyOfClass(vm, trace::ValueClass::Blob)),
              p.blobLines);
    EXPECT_EQ(vm.maxValueLines(), p.blobLines);
}

TEST(KvValueModel, LinesArePureFunctionsOfKeyIndexVersion)
{
    trace::KvValueModel vm(testProfile());
    trace::KvValueModel vm2(testProfile());
    for (const trace::ValueClass c :
         {trace::ValueClass::JsonLike, trace::ValueClass::CounterDense,
          trace::ValueClass::Blob}) {
        const std::uint64_t k = keyOfClass(vm, c);
        for (std::uint32_t v : {0u, 1u, 7u}) {
            ASSERT_TRUE(vm.line(k, 0, v) == vm.line(k, 0, v));
            ASSERT_TRUE(vm.line(k, 0, v) == vm2.line(k, 0, v));
        }
        // A SET must actually change the bytes.
        EXPECT_FALSE(vm.line(k, 0, 0) == vm.line(k, 0, 1))
            << trace::valueClassName(c);
    }
}

TEST(KvValueModel, VersionsBumpAndSnapshotRoundTrips)
{
    trace::KvValueModel vm(testProfile());
    EXPECT_EQ(vm.version(5), 0u);
    EXPECT_EQ(vm.bump(5), 1u);
    EXPECT_EQ(vm.bump(5), 2u);
    EXPECT_EQ(vm.bump(9), 1u);
    EXPECT_EQ(vm.version(5), 2u);
    EXPECT_EQ(vm.dirtyKeys(), 2u);

    snap::Serializer s;
    vm.save(s);
    const std::vector<std::uint8_t> frame = s.frame();

    // Restore into a model with *different* knobs: the saved
    // redundancy knobs must win, and synthesized contents must match
    // the original byte for byte.
    trace::KvProfile other;
    other.seed = 999;
    other.tokenPoolSize = 7;
    other.jsonFrac = 0.01;
    trace::KvValueModel twin(other);
    snap::Deserializer d(frame);
    twin.restore(d);
    ASSERT_TRUE(d.ok()) << d.error();
    EXPECT_EQ(twin.profile().seed, testProfile().seed);
    EXPECT_EQ(twin.profile().tokenPoolSize, testProfile().tokenPoolSize);
    EXPECT_EQ(twin.version(5), 2u);
    EXPECT_EQ(twin.version(9), 1u);
    EXPECT_EQ(twin.dirtyKeys(), 2u);
    for (std::uint64_t k : {0ull, 5ull, 9ull, 4321ull})
        for (std::uint32_t i = 0; i < vm.valueLines(k); i++)
            ASSERT_TRUE(vm.line(k, i, vm.version(k)) ==
                        twin.line(k, i, twin.version(k)))
                << "key " << k << " line " << i;
}

// ------------------------------------------------------------------
// TieredStore
// ------------------------------------------------------------------

CacheLine
zeroLine()
{
    return CacheLine();
}

CacheLine
noisyLine(std::uint64_t salt)
{
    CacheLine l;
    for (unsigned w = 0; w < kWordsPerLine / 2; w++)
        l.setWord64(w, splitmix64(mix64(salt, w)));
    return l;
}

kv::TierConfig
tinyTiers()
{
    kv::TierConfig cfg;
    cfg.dramBytes = 4 * 1024;
    cfg.ssdBytes = 16 * 1024;
    return cfg;
}

TEST(KvTieredStore, PromotionIsExclusiveAndAudited)
{
    kv::TieredStore ts(tinyTiers());
    const Addr hot = 0x1000;
    EXPECT_EQ(ts.fetch(hot, noisyLine(1)).level, kv::TierLevel::Origin);
    EXPECT_EQ(ts.fetch(hot, noisyLine(1)).level, kv::TierLevel::Dram);
    // Push enough distinct incompressible lines through DRAM to demote
    // the hot line to SSD.
    for (Addr a = 0x100000; a < 0x100000 + 0x40 * 256; a += 0x40)
        ts.fetch(a, noisyLine(a));
    ASSERT_TRUE(ts.audit().ok()) << ts.audit().str();
    EXPECT_GT(ts.stats().demotions, 0u);
    const auto back = ts.fetch(hot, noisyLine(1));
    EXPECT_EQ(back.level, kv::TierLevel::Ssd);
    EXPECT_GT(ts.stats().promotions, 0u);
    EXPECT_EQ(ts.fetch(hot, noisyLine(1)).level, kv::TierLevel::Dram);
    ASSERT_TRUE(ts.audit().ok()) << ts.audit().str();
}

TEST(KvTieredStore, WritebackGrowthCannotBustTheBudget)
{
    // Regression: fill DRAM with highly compressible lines, then
    // rewrite them in place with incompressible contents. The in-place
    // growth path must evict back under budget (found by
    // morc_check --kv).
    kv::TieredStore ts(tinyTiers());
    std::vector<Addr> addrs;
    for (Addr a = 0x40; a < 0x40 * 600; a += 0x40)
        addrs.push_back(a);
    for (Addr a : addrs)
        ts.fetch(a, zeroLine());
    ASSERT_TRUE(ts.audit().ok()) << ts.audit().str();
    for (Addr a : addrs) {
        ts.writeback(a, noisyLine(a));
        const check::AuditReport r = ts.audit();
        ASSERT_TRUE(r.ok()) << r.str();
    }
}

TEST(KvTieredStore, SnapshotRoundTripsToIdenticalBytes)
{
    kv::TieredStore ts(tinyTiers());
    Rng rng(5);
    for (int i = 0; i < 3000; i++) {
        const Addr a = (rng.uniform() < 0.3 ? 0x40 * (i % 64)
                                            : 0x40 * (1000 + i));
        if (rng.chance(0.25))
            ts.writeback(a, noisyLine(i));
        else
            ts.fetch(a, noisyLine(i));
    }
    ASSERT_TRUE(ts.audit().ok()) << ts.audit().str();

    snap::Serializer s;
    ts.saveState(s);
    const std::vector<std::uint8_t> frame = s.frame();

    kv::TieredStore twin(tinyTiers());
    snap::Deserializer d(frame);
    twin.restoreState(d);
    ASSERT_TRUE(d.ok()) << d.error();
    ASSERT_TRUE(twin.audit().ok()) << twin.audit().str();

    snap::Serializer s2;
    twin.saveState(s2);
    EXPECT_EQ(s2.frame(), frame);
    EXPECT_EQ(twin.stats().writebacks, ts.stats().writebacks);
}

// ------------------------------------------------------------------
// Service
// ------------------------------------------------------------------

kv::ServiceConfig
smallService(sim::Scheme scheme)
{
    kv::ServiceConfig cfg;
    cfg.scheme = scheme;
    cfg.frontBytes = 64 * 1024;
    cfg.tier.dramBytes = 128 * 1024;
    cfg.tier.ssdBytes = 512 * 1024;
    cfg.seed = 21;
    cfg.values.seed = 0xabcd;
    cfg.telemetryEpoch = 50'000;
    kv::TenantConfig a;
    a.name = "a";
    a.keys = 512;
    a.theta = 1.1;
    a.weight = 2;
    a.setFrac = 0.3;
    a.driftPeriod = 200;
    a.driftStride = 13;
    kv::TenantConfig b;
    b.name = "b";
    b.keys = 1024;
    b.theta = 0.8;
    b.weight = 1;
    b.setFrac = 0.1;
    cfg.tenants = {a, b};
    return cfg;
}

TEST(KvService, RunsAuditCleanAndCountsAddUp)
{
    kv::Service svc(smallService(sim::Scheme::Morc));
    svc.run(3000);
    const check::AuditReport r = svc.audit();
    ASSERT_TRUE(r.ok()) << r.str();
    EXPECT_EQ(svc.requests(), 3000u);
    EXPECT_EQ(svc.tenantStats(0).requests, 2000u);
    EXPECT_EQ(svc.tenantStats(1).requests, 1000u);
    EXPECT_EQ(svc.latency().total(), 3000u);
    EXPECT_GT(svc.cycles(), 0u);
    EXPECT_FALSE(svc.series().empty());

    const double p50 = kv::histPercentile(svc.latency(), 0.50);
    const double p99 = kv::histPercentile(svc.latency(), 0.99);
    const double p999 = kv::histPercentile(svc.latency(), 0.999);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, p999);
    EXPECT_GT(p50, 0.0);
}

TEST(KvService, MidRunSnapshotReplaysToIdenticalFinalBytes)
{
    const kv::ServiceConfig cfg = smallService(sim::Scheme::Morc);
    kv::Service svc(cfg);
    svc.run(2000);

    snap::Serializer s;
    svc.saveState(s);
    const std::vector<std::uint8_t> frame = s.frame();

    kv::Service twin(cfg);
    snap::Deserializer d(frame);
    twin.restoreState(d);
    ASSERT_TRUE(d.ok()) << d.error();
    ASSERT_TRUE(twin.audit().ok()) << twin.audit().str();
    EXPECT_EQ(twin.requests(), 2000u);
    EXPECT_EQ(twin.cycles(), svc.cycles());

    // Lockstep replay of the rest of the stream.
    for (int i = 0; i < 2000; i++) {
        const kv::Service::Reply a = svc.step();
        const kv::Service::Reply b = twin.step();
        ASSERT_EQ(a.req.key, b.req.key);
        ASSERT_EQ(a.req.tenant, b.req.tenant);
        ASSERT_EQ(a.digest, b.digest);
        ASSERT_EQ(a.latency, b.latency);
    }
    snap::Serializer sa, sb;
    svc.saveState(sa);
    twin.saveState(sb);
    EXPECT_EQ(sa.frame(), sb.frame());
}

TEST(KvService, HistPercentileSemantics)
{
    stats::Histogram h({10, 20, 30});
    EXPECT_EQ(kv::histPercentile(h, 0.5), 0.0); // empty
    for (int i = 0; i < 50; i++)
        h.record(5); // bucket 0
    for (int i = 0; i < 49; i++)
        h.record(15); // bucket 1
    h.record(1000); // overflow
    EXPECT_EQ(kv::histPercentile(h, 0.50), 10.0);
    EXPECT_EQ(kv::histPercentile(h, 0.99), 20.0);
    EXPECT_EQ(kv::histPercentile(h, 0.999), 60.0); // 2x last bound
}

} // namespace
} // namespace morc
