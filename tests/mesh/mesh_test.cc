/**
 * @file
 * Tiled-substrate unit tests: mesh geometry (XY routing is a metric),
 * NoC link contention (queueing is monotone in offered load and local
 * to the links actually traversed), and the BankedLlc director
 * (home-bank routing, cross-bank exclusivity, stat aggregation, audit
 * merging, and the LMT-corruption mutation hook).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cache/uncompressed.hh"
#include "core/morc.hh"
#include "mesh/banked_llc.hh"
#include "mesh/noc.hh"
#include "mesh/topology.hh"

namespace morc {
namespace {

using mesh::BankedLlc;
using mesh::MeshConfig;
using mesh::Noc;

MeshConfig
makeMesh(unsigned w, unsigned h, unsigned controllers = 2)
{
    MeshConfig cfg;
    cfg.width = w;
    cfg.height = h;
    cfg.memControllers = controllers;
    cfg.validate();
    return cfg;
}

/* ------------------------------------------------------------------ */
/* Geometry                                                           */
/* ------------------------------------------------------------------ */

TEST(MeshTopology, HopsIsTheManhattanMetric)
{
    const MeshConfig cfg = makeMesh(4, 4);
    for (unsigned a = 0; a < cfg.tiles(); a++) {
        EXPECT_EQ(cfg.hops(a, a), 0u);
        for (unsigned b = 0; b < cfg.tiles(); b++) {
            // Symmetry, and agreement with coordinate distance.
            EXPECT_EQ(cfg.hops(a, b), cfg.hops(b, a));
            const auto d = [](unsigned x, unsigned y) {
                return x > y ? x - y : y - x;
            };
            EXPECT_EQ(cfg.hops(a, b),
                      d(cfg.tileX(a), cfg.tileX(b)) +
                          d(cfg.tileY(a), cfg.tileY(b)));
            // Triangle inequality through every relay tile.
            for (unsigned c = 0; c < cfg.tiles(); c++)
                EXPECT_LE(cfg.hops(a, b),
                          cfg.hops(a, c) + cfg.hops(c, b));
        }
    }
    // Opposite corners of a 4x4 are 6 hops apart.
    EXPECT_EQ(cfg.hops(cfg.tileAt(0, 0), cfg.tileAt(3, 3)), 6u);
}

TEST(MeshTopology, HomeBankIsGranuleStable)
{
    const MeshConfig cfg = makeMesh(4, 4);
    // Every line within one interleave granule maps to the same bank;
    // the next granule maps to the next bank (round-robin).
    const Addr granule = cfg.interleaveBytes;
    for (Addr base = 0; base < 8 * granule; base += granule) {
        const unsigned bank = cfg.homeBank(base);
        for (Addr off = 0; off < granule; off += kLineSize)
            EXPECT_EQ(cfg.homeBank(base + off), bank);
        EXPECT_EQ(cfg.homeBank(base + granule),
                  (bank + 1) % cfg.tiles());
    }
}

TEST(MeshTopology, ControllersSitOnDistinctEdgeTiles)
{
    for (unsigned controllers : {1u, 2u, 3u, 4u, 8u}) {
        const MeshConfig cfg = makeMesh(4, 4, controllers);
        std::set<unsigned> tiles;
        for (unsigned c = 0; c < controllers; c++) {
            const unsigned t = cfg.controllerTile(c);
            ASSERT_LT(t, cfg.tiles());
            const unsigned y = cfg.tileY(t);
            EXPECT_TRUE(y == 0 || y == cfg.height - 1)
                << "controller " << c << " not on an edge row";
            tiles.insert(t);
        }
        EXPECT_EQ(tiles.size(), controllers);
    }
}

TEST(MeshTopology, ControllerMapCoversAllChannels)
{
    const MeshConfig cfg = makeMesh(4, 4, 2);
    std::set<unsigned> seen;
    for (Addr a = 0; a < 64 * cfg.interleaveBytes; a += cfg.interleaveBytes)
        seen.insert(cfg.controllerFor(a));
    EXPECT_EQ(seen.size(), cfg.memControllers);
}

/* ------------------------------------------------------------------ */
/* NoC timing                                                         */
/* ------------------------------------------------------------------ */

TEST(Noc, UncontendedLatencyIsHopsPlusSerialization)
{
    const MeshConfig cfg = makeMesh(4, 4);
    Noc noc(cfg);
    const unsigned from = cfg.tileAt(0, 0);
    const unsigned to = cfg.tileAt(3, 2);
    const Cycles lat = noc.transfer(from, to, kLineSize, /*now=*/0);
    EXPECT_EQ(lat, cfg.hops(from, to) * cfg.hopCycles +
                       noc.serializationCycles(kLineSize));
    EXPECT_EQ(noc.messages(), 1u);
    EXPECT_DOUBLE_EQ(noc.meanHops(), cfg.hops(from, to));
}

TEST(Noc, LocalDeliveryIsFree)
{
    Noc noc(makeMesh(4, 4));
    EXPECT_EQ(noc.transfer(5, 5, kLineSize, 100), 0u);
}

TEST(Noc, SameRouteContentionIsMonotone)
{
    // N messages injected on the same route at the same instant: each
    // later message queues behind the earlier ones, so latency is
    // strictly non-decreasing in injection order.
    const MeshConfig cfg = makeMesh(4, 4);
    Noc noc(cfg);
    Cycles prev = 0;
    for (int i = 0; i < 8; i++) {
        const Cycles lat = noc.transfer(0, 3, kLineSize, /*now=*/0);
        EXPECT_GE(lat, prev);
        prev = lat;
    }
    // And the 8-deep latency strictly exceeds the uncontended one.
    Noc fresh(cfg);
    EXPECT_GT(prev, fresh.transfer(0, 3, kLineSize, 0));
}

TEST(Noc, DisjointRoutesDoNotInterfere)
{
    const MeshConfig cfg = makeMesh(4, 4);
    Noc quiet(cfg);
    const Cycles alone =
        quiet.transfer(cfg.tileAt(0, 0), cfg.tileAt(3, 0), kLineSize, 0);

    Noc busy(cfg);
    // Saturate the bottom row's eastbound links...
    for (int i = 0; i < 16; i++)
        busy.transfer(cfg.tileAt(0, 0), cfg.tileAt(3, 0), kLineSize, 0);
    // ...then send along the top row: no shared links, no queueing.
    EXPECT_EQ(busy.transfer(cfg.tileAt(0, 3), cfg.tileAt(3, 3),
                            kLineSize, 0),
              alone);
}

TEST(Noc, ClearCountersDrainsLinksAndHistograms)
{
    Noc noc(makeMesh(2, 2));
    noc.transfer(0, 3, kLineSize, 0);
    noc.transfer(0, 3, kLineSize, 0);
    noc.clearCounters();
    EXPECT_EQ(noc.messages(), 0u);
    EXPECT_EQ(noc.hopHistogram().total(), 0u);
    EXPECT_EQ(noc.queueHistogram().total(), 0u);
    // Links idle again: the first transfer after the reset sees the
    // uncontended latency.
    const Cycles lat = noc.transfer(0, 3, kLineSize, 0);
    Noc fresh(makeMesh(2, 2));
    EXPECT_EQ(lat, fresh.transfer(0, 3, kLineSize, 0));
}

/* ------------------------------------------------------------------ */
/* BankedLlc                                                          */
/* ------------------------------------------------------------------ */

CacheLine
patternLine(std::uint32_t salt)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, salt + i);
    return l;
}

std::unique_ptr<BankedLlc>
makeBankedUncompressed(const MeshConfig &cfg, std::uint64_t total)
{
    return std::make_unique<BankedLlc>(
        cfg, total, [](unsigned, std::uint64_t capacity) {
            return std::make_unique<cache::UncompressedCache>(capacity);
        });
}

TEST(BankedLlc, CapacityIsPartitionedEvenly)
{
    const MeshConfig cfg = makeMesh(2, 2);
    auto banked = makeBankedUncompressed(cfg, 64 * 1024);
    EXPECT_EQ(banked->numBanks(), 4u);
    EXPECT_EQ(banked->capacityBytes(), 64u * 1024);
    for (unsigned b = 0; b < banked->numBanks(); b++)
        EXPECT_EQ(banked->bank(b).capacityBytes(), 16u * 1024);
    EXPECT_NE(banked->name().find("Banked[4x"), std::string::npos);
}

TEST(BankedLlc, RoutesToHomeBankExclusively)
{
    const MeshConfig cfg = makeMesh(2, 2);
    auto banked = makeBankedUncompressed(cfg, 64 * 1024);
    // One address per bank, spaced one interleave granule apart.
    for (unsigned g = 0; g < banked->numBanks(); g++) {
        const Addr addr = static_cast<Addr>(g) * cfg.interleaveBytes;
        const unsigned home = banked->homeBank(addr);
        banked->insert(addr, patternLine(g), false);

        const auto rr = banked->read(addr);
        ASSERT_TRUE(rr.hit);
        EXPECT_EQ(rr.data, patternLine(g));

        // Resident in the home bank, absent from every other bank.
        EXPECT_TRUE(banked->bank(home).read(addr).hit);
        for (unsigned b = 0; b < banked->numBanks(); b++)
            if (b != home)
                EXPECT_FALSE(banked->bank(b).read(addr).hit)
                    << "address aliased into foreign bank " << b;
    }
}

TEST(BankedLlc, AggregatesStatsAcrossBanks)
{
    const MeshConfig cfg = makeMesh(2, 2);
    auto banked = makeBankedUncompressed(cfg, 64 * 1024);
    const unsigned n = 3 * banked->numBanks();
    for (unsigned g = 0; g < n; g++) {
        const Addr addr = static_cast<Addr>(g) * cfg.interleaveBytes;
        banked->insert(addr, patternLine(g), false);
        banked->read(addr);
        banked->read(addr + kLineSize); // miss: only line 0 was filled
    }
    EXPECT_EQ(banked->stats().inserts, n);
    EXPECT_EQ(banked->stats().reads, 2u * n);
    EXPECT_EQ(banked->stats().readHits, n);
    EXPECT_EQ(banked->validLines(), n);

    banked->clearAllStats();
    EXPECT_EQ(banked->stats().reads, 0u);
    for (unsigned b = 0; b < banked->numBanks(); b++)
        EXPECT_EQ(banked->bank(b).stats().reads, 0u);
}

TEST(BankedLlc, AuditMergesBankReportsAndSeesInjectedCorruption)
{
    const MeshConfig cfg = makeMesh(2, 2);
    BankedLlc banked(cfg, 64 * 1024,
                     [](unsigned, std::uint64_t capacity) {
                         core::MorcConfig mc;
                         mc.capacityBytes = capacity;
                         return std::make_unique<core::LogCache>(mc);
                     });
    for (unsigned g = 0; g < 32; g++)
        banked.insert(static_cast<Addr>(g) * cfg.interleaveBytes,
                      patternLine(g), false);
    const auto clean = banked.audit();
    EXPECT_TRUE(clean.ok()) << clean.str();
    EXPECT_GT(clean.checksRun(), 0u);

    ASSERT_TRUE(banked.debugCorruptLmt(/*seed=*/7));
    const auto broken = banked.audit();
    EXPECT_FALSE(broken.ok());
    // The merged report names the offending bank.
    EXPECT_NE(broken.str().find("bank"), std::string::npos);
}

TEST(BankedLlc, InvalidLineFractionAveragesMorcBanks)
{
    const MeshConfig cfg = makeMesh(2, 2);
    auto uncompressed = makeBankedUncompressed(cfg, 64 * 1024);
    EXPECT_DOUBLE_EQ(uncompressed->invalidLineFraction(), 0.0);

    BankedLlc banked(cfg, 64 * 1024,
                     [](unsigned, std::uint64_t capacity) {
                         core::MorcConfig mc;
                         mc.capacityBytes = capacity;
                         return std::make_unique<core::LogCache>(mc);
                     });
    // Rewrite the same addresses: in-place invalidation accumulates.
    for (int round = 0; round < 4; round++)
        for (unsigned g = 0; g < 64; g++)
            banked.insert(static_cast<Addr>(g) * cfg.interleaveBytes,
                          patternLine(16 * round + g), true);
    EXPECT_GE(banked.invalidLineFraction(), 0.0);
    EXPECT_LE(banked.invalidLineFraction(), 1.0);
}

} // namespace
} // namespace morc
