/**
 * @file
 * MemoryChannel occupancy tests: reads and posted writes must charge
 * the channel symmetrically, so their queueing interaction is pinned
 * here — a write occupies the channel exactly like a read of the same
 * size, and later accesses of either kind queue behind it.
 *
 * The channel below is configured so cyclesPerByte == 1 (bandwidth ==
 * clock): a 64 B line occupies the channel for exactly 64 cycles and
 * every expectation is an exact integer.
 */

#include <gtest/gtest.h>

#include "sim/memchannel.hh"
#include "util/types.hh"

namespace morc {
namespace {

constexpr double kClock = 2e9;
constexpr Cycles kDram = 70;

sim::MemoryChannel
unitChannel()
{
    return sim::MemoryChannel(/*bytes_per_sec=*/kClock, kClock, kDram);
}

TEST(Channel, UnloadedReadPaysAccessPlusTransfer)
{
    auto ch = unitChannel();
    EXPECT_EQ(ch.occupancyCycles(kLineSize), kLineSize);
    EXPECT_EQ(ch.readAccess(0), kDram + kLineSize);
    EXPECT_EQ(ch.busyUntil(), kLineSize);
    EXPECT_EQ(ch.reads(), 1u);
    EXPECT_EQ(ch.bytesTransferred(), kLineSize);
}

TEST(Channel, PostedWriteAdvancesBusyUntilLikeARead)
{
    auto read_ch = unitChannel();
    auto write_ch = unitChannel();
    read_ch.readAccess(0);
    write_ch.writeAccess(0);
    // Symmetry: identical occupancy for identical bytes.
    EXPECT_EQ(write_ch.busyUntil(), read_ch.busyUntil());
    EXPECT_EQ(write_ch.bytesTransferred(), read_ch.bytesTransferred());
    EXPECT_EQ(write_ch.writes(), 1u);
}

TEST(Channel, ReadQueuesBehindEarlierWrite)
{
    auto ch = unitChannel();
    ch.writeAccess(0); // occupies [0, 64)
    // A read issued at t=0 waits out the write's transfer, then pays
    // its own access + transfer: 64 (queue) + 70 + 64.
    EXPECT_EQ(ch.readAccess(0), kLineSize + kDram + kLineSize);
    EXPECT_EQ(ch.busyUntil(), 2 * kLineSize);
}

TEST(Channel, WriteQueuesBehindEarlierRead)
{
    auto ch = unitChannel();
    ch.readAccess(0); // occupies [0, 64)
    ch.writeAccess(0);
    // The posted write claims the next slot even though its caller
    // observes no latency.
    EXPECT_EQ(ch.busyUntil(), 2 * kLineSize);
    // And a third access queues behind both.
    EXPECT_EQ(ch.readAccess(0), 2 * kLineSize + kDram + kLineSize);
}

TEST(Channel, QueueingAccumulatesAcrossMixedSequences)
{
    auto ch = unitChannel();
    // read, write, read, write at the same instant: FCFS slots at
    // 0, 64, 128, 192.
    EXPECT_EQ(ch.readAccess(0), kDram + kLineSize);
    ch.writeAccess(0);
    EXPECT_EQ(ch.readAccess(0), 2 * kLineSize + kDram + kLineSize);
    ch.writeAccess(0);
    EXPECT_EQ(ch.busyUntil(), 4 * kLineSize);
    EXPECT_EQ(ch.bytesTransferred(), 4u * kLineSize);

    // Once the backlog drains, latency returns to the unloaded cost.
    EXPECT_EQ(ch.readAccess(4 * kLineSize), kDram + kLineSize);
}

TEST(Channel, IdleGapsAreNotBanked)
{
    auto ch = unitChannel();
    ch.writeAccess(0); // busy until 64
    // An access far in the future sees an idle channel — occupancy
    // never credits past idle time.
    EXPECT_EQ(ch.readAccess(1000), kDram + kLineSize);
    EXPECT_EQ(ch.busyUntil(), 1000 + kLineSize);
}

TEST(Channel, ClearCountersRebasesEverything)
{
    auto ch = unitChannel();
    ch.readAccess(0);
    ch.writeAccess(0);
    ch.clearCounters();
    EXPECT_EQ(ch.reads(), 0u);
    EXPECT_EQ(ch.writes(), 0u);
    EXPECT_EQ(ch.bytesTransferred(), 0u);
    EXPECT_EQ(ch.busyUntil(), 0u);
    // Time restarted at zero: an immediate read is unloaded again.
    EXPECT_EQ(ch.readAccess(0), kDram + kLineSize);
}

} // namespace
} // namespace morc
