/**
 * @file
 * Tests for the simulation layer: L1, memory channel, energy model, and
 * end-to-end system runs (including full-hierarchy functional checks).
 */

#include <gtest/gtest.h>

#include "energy/energy.hh"
#include "sim/l1.hh"
#include "sim/memchannel.hh"
#include "sim/system.hh"

namespace morc {
namespace sim {
namespace {

// --------------------------------------------------------------------- L1

TEST(L1, HitAfterFill)
{
    L1Cache l1;
    CacheLine data;
    data.setWord32(0, 99);
    EXPECT_FALSE(l1.lookup(0x100));
    l1.fill(0x100, data, false);
    EXPECT_TRUE(l1.lookup(0x100));
    EXPECT_EQ(l1.peek(0x100)->word32(0), 99u);
}

TEST(L1, VictimCarriesDirtyData)
{
    L1Cache l1(256, 1); // 4 sets, direct-mapped
    CacheLine a, b;
    a.setWord32(0, 1);
    b.setWord32(0, 2);
    l1.fill(0x1000, a, true);
    // Find a conflicting address by probing fills until 0x1000 leaves.
    bool displaced = false;
    for (Addr addr = 0; addr < (1 << 16) && !displaced; addr += kLineSize) {
        if (addr == 0x1000)
            continue;
        auto v = l1.fill(addr, b, false);
        if (v && v->addr == 0x1000) {
            EXPECT_TRUE(v->dirty);
            EXPECT_EQ(v->data.word32(0), 1u);
            displaced = true;
        }
    }
    EXPECT_TRUE(displaced);
}

TEST(L1, UpdateMarksDirty)
{
    L1Cache l1(256, 4);
    CacheLine a;
    l1.fill(0x40, a, false);
    CacheLine b;
    b.setWord32(3, 7);
    l1.update(0x40, b);
    // Force eviction of everything; the victim for 0x40 must be dirty.
    bool seen = false;
    for (Addr addr = 0x10000; addr < 0x20000; addr += kLineSize) {
        auto v = l1.fill(addr, a, false);
        if (v && v->addr == 0x40) {
            EXPECT_TRUE(v->dirty);
            EXPECT_EQ(v->data.word32(3), 7u);
            seen = true;
            break;
        }
    }
    EXPECT_TRUE(seen);
}

// ---------------------------------------------------------------- Channel

TEST(Channel, UncontendedLatency)
{
    MemoryChannel ch(100e6, 2e9, 70); // 20 cycles/byte
    const Cycles lat = ch.readAccess(1000);
    // 70 access + 64 * 20 occupancy.
    EXPECT_EQ(lat, 70u + 64u * 20u);
}

TEST(Channel, QueueingDelaysLaterRequests)
{
    MemoryChannel ch(100e6, 2e9, 70);
    const Cycles first = ch.readAccess(0);
    const Cycles second = ch.readAccess(0); // same instant: queues
    EXPECT_GT(second, first);
}

TEST(Channel, WritesConsumeBandwidth)
{
    MemoryChannel ch(100e6, 2e9, 70);
    ch.writeAccess(0);
    const Cycles lat = ch.readAccess(0);
    EXPECT_GT(lat, 70u + 64u * 20u); // queued behind the write
    EXPECT_EQ(ch.writes(), 1u);
    EXPECT_EQ(ch.bytesTransferred(), 128u);
}

TEST(Channel, HigherBandwidthLowersLatency)
{
    MemoryChannel slow(100e6, 2e9, 70);
    MemoryChannel fast(1600e6, 2e9, 70);
    EXPECT_GT(slow.readAccess(0), fast.readAccess(0));
}

// ----------------------------------------------------------------- Energy

TEST(Energy, Table1Published)
{
    const auto &t1 = energy::table1();
    ASSERT_EQ(t1.size(), 6u);
    EXPECT_DOUBLE_EQ(t1[0].joules, 2e-12);
    EXPECT_DOUBLE_EQ(t1[5].joules, 9.35e-9);
    // DDR3 access is ~4675x a 64b comparison (the paper's "Scale").
    EXPECT_NEAR(t1[5].joules / t1[0].joules, 4675.0, 1.0);
}

TEST(Energy, BreakdownIntegration)
{
    energy::EnergyEvents ev;
    ev.cycles = 2'000'000'000; // one second at 2 GHz
    ev.dramAccesses = 1000;
    ev.l1Accesses = 1000;
    ev.llcAccesses = 1000;
    ev.linesCompressed = 100;
    ev.linesDecompressed = 100;
    const auto b = energy::integrate(ev, energy::Engine::Lbe);
    EXPECT_NEAR(b.staticJ, 7e-3 + 20e-3 + 10.9e-3, 1e-6);
    EXPECT_NEAR(b.dramJ, 1000 * 74.8e-9, 1e-12);
    EXPECT_NEAR(b.compJ, 100 * 200e-12, 1e-15);
    EXPECT_NEAR(b.decompJ, 100 * 150e-12, 1e-15);
    EXPECT_GT(b.total(), b.staticJ);
}

TEST(Energy, EngineSelection)
{
    energy::EnergyEvents ev;
    ev.linesCompressed = 1;
    const auto none = energy::integrate(ev, energy::Engine::None);
    const auto cpack = energy::integrate(ev, energy::Engine::CPack);
    const auto lbe = energy::integrate(ev, energy::Engine::Lbe);
    EXPECT_EQ(none.compJ, 0.0);
    EXPECT_LT(cpack.compJ, lbe.compJ);
}

// ----------------------------------------------------------------- System

SystemConfig
smallConfig(Scheme s)
{
    SystemConfig cfg;
    cfg.scheme = s;
    cfg.numCores = 1;
    cfg.ratioSampleInterval = 100'000;
    cfg.checkFunctional = true;
    return cfg;
}

TEST(System, FunctionalAcrossSchemes)
{
    // checkFunctional aborts on any data mismatch anywhere in the
    // hierarchy; surviving the run is the assertion.
    for (Scheme s : {Scheme::Uncompressed, Scheme::Adaptive,
                     Scheme::Decoupled, Scheme::Sc2, Scheme::Morc,
                     Scheme::MorcMerged}) {
        System sys(smallConfig(s), {trace::findBenchmark("gcc")});
        const RunResult r = sys.run(300'000);
        EXPECT_GE(r.totalInstructions, 300'000u) << schemeName(s);
        EXPECT_GT(r.cores[0].ipc(), 0.0) << schemeName(s);
    }
}

TEST(System, MorcCompressesBetterThanBaselines)
{
    auto ratio = [](Scheme s) {
        SystemConfig cfg = smallConfig(s);
        cfg.checkFunctional = false;
        System sys(cfg, {trace::findBenchmark("gcc")});
        return sys.run(1'000'000).compressionRatio;
    };
    const double unc = ratio(Scheme::Uncompressed);
    const double adaptive = ratio(Scheme::Adaptive);
    const double morc = ratio(Scheme::Morc);
    EXPECT_LE(unc, 1.01);
    EXPECT_GT(morc, adaptive);
    EXPECT_GT(morc, 2.0);
}

TEST(System, CompressionReducesBandwidth)
{
    auto traffic = [](Scheme s) {
        SystemConfig cfg = smallConfig(s);
        cfg.checkFunctional = false;
        System sys(cfg, {trace::findBenchmark("gcc")});
        return sys.run(1'000'000).gbPerBillionInstr();
    };
    EXPECT_LT(traffic(Scheme::Morc), traffic(Scheme::Uncompressed));
}

TEST(System, MultiCoreSharedLlc)
{
    SystemConfig cfg;
    cfg.scheme = Scheme::Morc;
    cfg.numCores = 4;
    cfg.checkFunctional = true;
    cfg.ratioSampleInterval = 200'000;
    std::vector<trace::BenchmarkSpec> programs(
        4, trace::findBenchmark("gcc"));
    System sys(cfg, programs);
    const RunResult r = sys.run(100'000);
    ASSERT_EQ(r.cores.size(), 4u);
    for (const auto &c : r.cores)
        EXPECT_GE(c.instructions, 100'000u);
    EXPECT_GT(r.compressionRatio, 1.0);
}

TEST(System, BandwidthScalingChangesIpc)
{
    auto ipc_at = [](double bw) {
        SystemConfig cfg;
        cfg.scheme = Scheme::Uncompressed;
        cfg.bandwidthPerCore = bw;
        System sys(cfg, {trace::findBenchmark("mcf")});
        return sys.run(500'000).cores[0].ipc();
    };
    EXPECT_GT(ipc_at(1600e6), ipc_at(12.5e6) * 1.5);
}

TEST(System, ThroughputModelHidesLatency)
{
    SystemConfig cfg;
    cfg.scheme = Scheme::Uncompressed;
    System sys(cfg, {trace::findBenchmark("povray")});
    const RunResult r = sys.run(500'000);
    // Compute-bound workload: most latency is hidden by 4 threads.
    EXPECT_GT(r.cores[0].throughput(), r.cores[0].ipc());
}

TEST(System, InclusiveModeRaisesInvalidFraction)
{
    auto invalid = [](bool inclusive) {
        SystemConfig cfg;
        cfg.scheme = Scheme::Morc;
        cfg.useMorcOverride = true;
        cfg.morc.compressionEnabled = false; // Figure 12 methodology
        cfg.inclusiveWriteFills = inclusive;
        System sys(cfg, {trace::findBenchmark("gcc")});
        return sys.run(1'000'000).invalidLineFraction;
    };
    EXPECT_GE(invalid(true), invalid(false));
}

TEST(System, EnergyBreakdownPopulated)
{
    SystemConfig cfg = smallConfig(Scheme::Morc);
    cfg.checkFunctional = false;
    System sys(cfg, {trace::findBenchmark("astar")});
    const RunResult r = sys.run(500'000);
    EXPECT_GT(r.energyBreakdown.staticJ, 0.0);
    EXPECT_GT(r.energyBreakdown.dramJ, 0.0);
    EXPECT_GT(r.energyBreakdown.decompJ, 0.0);
    EXPECT_GT(r.energyBreakdown.total(), 0.0);
}

TEST(System, Uncompressed8xIsLarger)
{
    SystemConfig cfg = smallConfig(Scheme::Uncompressed8x);
    cfg.checkFunctional = false;
    System sys(cfg, {trace::findBenchmark("gcc")});
    EXPECT_EQ(sys.llc().capacityBytes(), 8u * 128u * 1024u);
}

} // namespace
} // namespace sim
} // namespace morc
