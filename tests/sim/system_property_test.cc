/**
 * @file
 * System-level property tests: bandwidth caps, warm-up semantics,
 * cross-scheme functional sweeps, and trace-locality properties that
 * the architecture results depend on.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"

namespace morc {
namespace sim {
namespace {

// ---------------------------------------------------- bandwidth property

TEST(SystemProperty, ChannelNeverExceedsBandwidthCap)
{
    // Measured bytes per cycle must never exceed the configured cap
    // (the central constraint of the paper's evaluation).
    SystemConfig cfg;
    cfg.scheme = Scheme::Uncompressed;
    cfg.bandwidthPerCore = 100e6; // 0.05 B/cycle at 2 GHz
    System sys(cfg, {trace::findBenchmark("mcf")});
    const RunResult r = sys.run(400'000);
    const double bytes =
        static_cast<double>((r.memReads + r.memWrites) * kLineSize);
    const double bytes_per_cycle =
        bytes / static_cast<double>(r.completionCycles);
    EXPECT_LE(bytes_per_cycle, 100e6 / 2e9 * 1.02);
}

TEST(SystemProperty, WarmupIsExcludedFromMeasurement)
{
    SystemConfig cfg;
    cfg.scheme = Scheme::Uncompressed;
    System sys(cfg, {trace::findBenchmark("gcc")});
    const RunResult r = sys.run(100'000, 300'000);
    // Counters reflect only the measured phase.
    EXPECT_GE(r.totalInstructions, 100'000u);
    EXPECT_LT(r.totalInstructions, 200'000u);
    EXPECT_EQ(r.cores[0].instructions, r.totalInstructions);
}

TEST(SystemProperty, WarmupImprovesHitRate)
{
    auto hit_rate = [](std::uint64_t warmup) {
        SystemConfig cfg;
        cfg.scheme = Scheme::Uncompressed;
        System sys(cfg, {trace::findBenchmark("gobmk")});
        const RunResult r = sys.run(200'000, warmup);
        const auto &c = r.cores[0];
        return static_cast<double>(c.llcHits) /
               static_cast<double>(c.llcHits + c.llcMisses);
    };
    EXPECT_GT(hit_rate(600'000), hit_rate(0));
}

TEST(SystemProperty, DeterministicAcrossRuns)
{
    auto once = [] {
        SystemConfig cfg;
        cfg.scheme = Scheme::Morc;
        System sys(cfg, {trace::findBenchmark("astar")});
        return sys.run(200'000, 100'000);
    };
    const RunResult a = once();
    const RunResult b = once();
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.completionCycles, b.completionCycles);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_DOUBLE_EQ(a.compressionRatio, b.compressionRatio);
}

TEST(SystemProperty, MorcLosesIpcAtAbundantBandwidth)
{
    // Figure 10's qualitative claim: with plenty of bandwidth, paying
    // decompression latency can cost single-stream IPC.
    auto ipc = [](Scheme s) {
        SystemConfig cfg;
        cfg.scheme = s;
        cfg.bandwidthPerCore = 1600e6;
        System sys(cfg, {trace::findBenchmark("povray")});
        return sys.run(400'000, 400'000).cores[0].ipc();
    };
    EXPECT_LT(ipc(Scheme::Morc), ipc(Scheme::Uncompressed) * 1.02);
}

TEST(SystemProperty, EnergyScalesWithDram)
{
    // A bandwidth-hungry workload spends most memory-system energy in
    // DRAM; compression that removes accesses must reduce total energy.
    auto dram_j = [](Scheme s) {
        SystemConfig cfg;
        cfg.scheme = s;
        System sys(cfg, {trace::findBenchmark("gcc")});
        return sys.run(400'000, 800'000).energyBreakdown;
    };
    const auto base = dram_j(Scheme::Uncompressed);
    const auto morc = dram_j(Scheme::Morc);
    EXPECT_LT(morc.dramJ, base.dramJ);
    EXPECT_GT(morc.decompJ, base.decompJ);
}

TEST(SystemProperty, Uncompressed8xBeatsBaselineHitRate)
{
    auto misses = [](Scheme s) {
        SystemConfig cfg;
        cfg.scheme = s;
        System sys(cfg, {trace::findBenchmark("omnetpp")});
        return sys.run(300'000, 600'000).cores[0].llcMisses;
    };
    EXPECT_LT(misses(Scheme::Uncompressed8x),
              misses(Scheme::Uncompressed));
}

// --------------------------------------------- cross-scheme x workload

class SchemeWorkload
    : public ::testing::TestWithParam<std::tuple<Scheme, const char *>>
{};

TEST_P(SchemeWorkload, EndToEndFunctional)
{
    SystemConfig cfg;
    cfg.scheme = std::get<0>(GetParam());
    cfg.checkFunctional = true; // aborts on any wrong data
    cfg.ratioSampleInterval = 100'000;
    System sys(cfg, {trace::resolveWorkload(std::get<1>(GetParam()))});
    const RunResult r = sys.run(150'000, 150'000);
    EXPECT_GT(r.cores[0].ipc(), 0.0);
    EXPECT_GE(r.compressionRatio, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchemeWorkload,
    ::testing::Combine(::testing::Values(Scheme::Uncompressed,
                                         Scheme::Adaptive,
                                         Scheme::Decoupled, Scheme::Sc2,
                                         Scheme::Morc,
                                         Scheme::MorcMerged),
                       ::testing::Values("gcc", "mcf", "h264ref",
                                         "cactusADM", "povray")),
    [](const auto &info) {
        return std::string(schemeName(std::get<0>(info.param))) + "_" +
               std::get<1>(info.param);
    });

// --------------------------------------------------- trace properties

TEST(SystemProperty, InterleaveQuantumPreservesMorcLocality)
{
    // Coarser scheduling quanta keep per-core fill bursts contiguous at
    // the shared LLC, which MORC's log locality benefits from.
    auto ratio = [](unsigned quantum) {
        SystemConfig cfg;
        cfg.scheme = Scheme::Morc;
        cfg.numCores = 8;
        cfg.interleaveQuantum = quantum;
        cfg.ratioSampleInterval = 200'000;
        std::vector<trace::BenchmarkSpec> programs(
            8, trace::findBenchmark("gcc"));
        System sys(cfg, programs);
        return sys.run(60'000, 120'000).compressionRatio;
    };
    EXPECT_GT(ratio(256), ratio(1) * 1.02);
}

TEST(TraceProperty, BurstsProduceAdjacentMisses)
{
    // The spatial-locality property the tag codec depends on: a healthy
    // share of consecutive distinct lines are address-adjacent.
    auto spec = trace::findBenchmark("gcc");
    trace::ThreadTrace t(spec, 0);
    Addr prev = 0;
    unsigned adjacent = 0, distinct = 0;
    for (int i = 0; i < 200'000; i++) {
        const Addr ln = lineNumber(t.next().addr);
        if (ln == prev)
            continue;
        if (ln > prev ? ln - prev <= 2 : prev - ln <= 2)
            adjacent++;
        distinct++;
        prev = ln;
    }
    EXPECT_GT(static_cast<double>(adjacent) / distinct, 0.2);
}

TEST(TraceProperty, ReplicasShareValuesNotAddresses)
{
    // Sx mixes: two replicas of one benchmark produce identical data at
    // identical local offsets but disjoint physical addresses.
    auto spec = trace::findBenchmark("bzip2");
    trace::ThreadTrace a(spec, 0, 0), b(spec, 1, 1);
    EXPECT_NE(a.addrBase(), b.addrBase());
    EXPECT_EQ(a.values().line(1234, 0), b.values().line(1234, 0));
}

} // namespace
} // namespace sim
} // namespace morc
