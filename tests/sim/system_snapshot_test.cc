/**
 * @file
 * Whole-system checkpoint tests: for every cache scheme — flat,
 * merged-tag MORC, and the 4x4 banked-mesh substrate — a system saved
 * after warm-up and restored into a fresh instance must continue
 * *byte-identically*: the measured-window results match and the final
 * serialized states are equal down to the last bit. Plus rejection of
 * mismatched configs, mismatched workloads, and corrupt files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "snapshot/snapshot.hh"
#include "trace/value_model.hh"

namespace morc {
namespace sim {
namespace {

constexpr std::uint64_t kWarm = 60'000;
constexpr std::uint64_t kMeasure = 40'000;

std::vector<trace::BenchmarkSpec>
programs(unsigned n)
{
    const char *names[] = {"gcc", "mcf", "astar", "soplex"};
    std::vector<trace::BenchmarkSpec> out;
    for (unsigned i = 0; i < n; i++)
        out.push_back(trace::findBenchmark(names[i % 4]));
    return out;
}

std::vector<std::uint8_t>
stateBytes(const System &sys)
{
    snap::Serializer s;
    sys.saveState(s);
    return s.frame();
}

/** Expect that warm-up + snapshot + restore + measure reproduces a
 *  straight run() exactly, including the final serialized state. */
void
expectRoundTrip(const SystemConfig &cfg, unsigned ncores)
{
    const auto progs = programs(ncores);

    // Reference: uninterrupted run.
    System ref(cfg, progs);
    const RunResult want = ref.run(kMeasure, kWarm);

    // Checkpointed: warm, serialize, restore into a fresh system.
    System saver(cfg, progs);
    saver.warmup(kWarm);
    const std::vector<std::uint8_t> frame = stateBytes(saver);

    System restored(cfg, progs);
    snap::Deserializer d(frame);
    restored.restoreState(d);
    ASSERT_TRUE(d.ok()) << d.error();
    EXPECT_TRUE(restored.warmed());

    // The restored instance must serialize right back to the same
    // bytes before it runs anything.
    EXPECT_EQ(stateBytes(restored), frame);

    const RunResult got = restored.measure(kMeasure);
    EXPECT_EQ(got.totalInstructions, want.totalInstructions);
    EXPECT_EQ(got.completionCycles, want.completionCycles);
    EXPECT_EQ(got.memReads, want.memReads);
    EXPECT_EQ(got.memWrites, want.memWrites);
    EXPECT_EQ(got.llcStats.readHits, want.llcStats.readHits);
    EXPECT_EQ(got.llcStats.logFlushes, want.llcStats.logFlushes);
    EXPECT_EQ(got.compressionRatio, want.compressionRatio);
    ASSERT_EQ(got.cores.size(), want.cores.size());
    for (std::size_t i = 0; i < got.cores.size(); i++) {
        EXPECT_EQ(got.cores[i].cycles, want.cores[i].cycles);
        EXPECT_EQ(got.cores[i].llcMisses, want.cores[i].llcMisses);
        EXPECT_EQ(got.cores[i].stallCycles, want.cores[i].stallCycles);
    }

    // And after the measured window the two simulators are still in
    // exactly the same state.
    EXPECT_EQ(stateBytes(restored), stateBytes(ref));
}

SystemConfig
flatConfig(Scheme s)
{
    SystemConfig cfg;
    cfg.scheme = s;
    cfg.numCores = 2;
    cfg.llcBytesPerCore = 64 * 1024;
    cfg.ratioSampleInterval = 50'000;
    return cfg;
}

TEST(SystemSnapshot, Uncompressed)
{
    expectRoundTrip(flatConfig(Scheme::Uncompressed), 2);
}

TEST(SystemSnapshot, Adaptive)
{
    expectRoundTrip(flatConfig(Scheme::Adaptive), 2);
}

TEST(SystemSnapshot, Decoupled)
{
    expectRoundTrip(flatConfig(Scheme::Decoupled), 2);
}

TEST(SystemSnapshot, Sc2)
{
    expectRoundTrip(flatConfig(Scheme::Sc2), 2);
}

TEST(SystemSnapshot, Morc)
{
    expectRoundTrip(flatConfig(Scheme::Morc), 2);
}

TEST(SystemSnapshot, MorcMerged)
{
    expectRoundTrip(flatConfig(Scheme::MorcMerged), 2);
}

TEST(SystemSnapshot, OracleInter)
{
    expectRoundTrip(flatConfig(Scheme::OracleInter), 2);
}

TEST(SystemSnapshot, BankedMesh4x4)
{
    SystemConfig cfg;
    cfg.scheme = Scheme::Morc;
    cfg.numCores = 4;
    cfg.llcBytesPerCore = 64 * 1024;
    cfg.ratioSampleInterval = 50'000;
    cfg.useMesh = true;
    cfg.meshCfg.width = 4;
    cfg.meshCfg.height = 4;
    expectRoundTrip(cfg, 4);
}

TEST(SystemSnapshot, WithTelemetryAndTrace)
{
    SystemConfig cfg = flatConfig(Scheme::Morc);
    cfg.telemetryEpoch = 10'000;
    cfg.traceEvents = true;
    expectRoundTrip(cfg, 2);
}

TEST(SystemSnapshot, WithAttachedHistograms)
{
    stats::Histogram decomp({64, 128, 256, 512});
    stats::Histogram lat({16, 32, 64});
    SystemConfig cfg = flatConfig(Scheme::Morc);
    cfg.decompressedBytesHistogram = &decomp;
    cfg.hitLatencyHistogram = &lat;

    System ref(cfg, programs(2));
    const RunResult want = ref.run(kMeasure, kWarm);
    const stats::Histogram refDecomp = decomp;

    decomp.clear();
    lat.clear();
    System saver(cfg, programs(2));
    saver.warmup(kWarm);
    const auto frame = stateBytes(saver);

    decomp.clear();
    lat.clear();
    System restored(cfg, programs(2));
    snap::Deserializer d(frame);
    restored.restoreState(d);
    ASSERT_TRUE(d.ok()) << d.error();
    const RunResult got = restored.measure(kMeasure);
    EXPECT_EQ(got.completionCycles, want.completionCycles);
    EXPECT_EQ(decomp.total(), refDecomp.total());
}

TEST(SystemSnapshot, KvValueModelKnobsRoundTrip)
{
    // The KV value synthesizer carries mutable state (per-key SET
    // versions) *and* the redundancy knobs that shape the data those
    // versions address; both must ride a snapshot so a restored KV run
    // synthesizes byte-identical payloads.
    trace::KvProfile p;
    p.seed = 77;
    p.jsonFrac = 0.6;
    p.counterFrac = 0.2;
    p.jsonLines = 3;
    p.blobLines = 5;
    p.tokenPoolSize = 48;
    p.tokenTheta = 1.3;
    p.setChurn = 0.45;
    trace::KvValueModel vm(p);
    for (std::uint64_t k = 0; k < 64; k += 3)
        vm.bump(k);

    snap::Serializer s;
    vm.save(s);
    const auto frame = s.frame();

    trace::KvValueModel twin{trace::KvProfile{}}; // default knobs
    snap::Deserializer d(frame);
    twin.restore(d);
    ASSERT_TRUE(d.ok()) << d.error();
    EXPECT_EQ(twin.profile().seed, p.seed);
    EXPECT_EQ(twin.profile().jsonLines, p.jsonLines);
    EXPECT_EQ(twin.profile().tokenPoolSize, p.tokenPoolSize);
    EXPECT_EQ(twin.profile().tokenTheta, p.tokenTheta);
    EXPECT_EQ(twin.profile().setChurn, p.setChurn);
    EXPECT_EQ(twin.dirtyKeys(), vm.dirtyKeys());
    for (std::uint64_t k = 0; k < 64; k++) {
        ASSERT_EQ(twin.version(k), vm.version(k));
        for (std::uint32_t i = 0; i < vm.valueLines(k); i++)
            ASSERT_TRUE(vm.line(k, i, vm.version(k)) ==
                        twin.line(k, i, twin.version(k)));
    }

    // Re-serializing the twin reproduces the same bytes, and a
    // tampered frame is rejected.
    snap::Serializer s2;
    twin.save(s2);
    EXPECT_EQ(s2.frame(), frame);
    auto bad = frame;
    bad[bad.size() / 2] ^= 0x20;
    trace::KvValueModel victim{trace::KvProfile{}};
    snap::Deserializer db(std::move(bad));
    victim.restore(db);
    EXPECT_FALSE(db.ok());
}

TEST(SystemSnapshot, RejectsConfigMismatch)
{
    System saver(flatConfig(Scheme::Morc), programs(2));
    saver.warmup(kWarm);
    const auto frame = stateBytes(saver);

    // Different scheme.
    {
        System other(flatConfig(Scheme::Sc2), programs(2));
        snap::Deserializer d(frame);
        other.restoreState(d);
        EXPECT_FALSE(d.ok());
    }
    // Different capacity.
    {
        SystemConfig cfg = flatConfig(Scheme::Morc);
        cfg.llcBytesPerCore = 128 * 1024;
        System other(cfg, programs(2));
        snap::Deserializer d(frame);
        other.restoreState(d);
        EXPECT_FALSE(d.ok());
    }
    // Different workloads.
    {
        System other(flatConfig(Scheme::Morc),
                     {trace::findBenchmark("mcf"),
                      trace::findBenchmark("gcc")});
        snap::Deserializer d(frame);
        other.restoreState(d);
        EXPECT_FALSE(d.ok());
    }
}

TEST(SystemSnapshot, SaveRestoreFileAndCorruptionFallback)
{
    const std::string path = "/tmp/morc_system_snapshot_test.snap";
    const SystemConfig cfg = flatConfig(Scheme::MorcMerged);

    System saver(cfg, programs(2));
    saver.warmup(kWarm);
    std::string err;
    ASSERT_TRUE(saver.save(path, &err)) << err;

    {
        System restored(cfg, programs(2));
        EXPECT_TRUE(restored.restore(path, &err)) << err;
        EXPECT_TRUE(restored.warmed());
    }

    // One flipped byte inside the file must be rejected, with a reason.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 64, SEEK_SET);
        int c = std::fgetc(f);
        std::fseek(f, 64, SEEK_SET);
        std::fputc(c ^ 0x01, f);
        std::fclose(f);

        System restored(cfg, programs(2));
        err.clear();
        EXPECT_FALSE(restored.restore(path, &err));
        EXPECT_FALSE(err.empty());
    }

    // A missing file is an error, not a crash.
    {
        System restored(cfg, programs(2));
        EXPECT_FALSE(restored.restore("/nonexistent/x.snap", &err));
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace sim
} // namespace morc
