/**
 * @file
 * Tests for the snapshot serialization layer: primitive round-trips,
 * frame validation (magic/version/endianness/length/CRC), the tagged
 * section machinery, soft-failure semantics, and atomic file writes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "snapshot/snapshot.hh"

namespace morc {
namespace snap {
namespace {

TEST(Snapshot, PrimitivesRoundTrip)
{
    Serializer s;
    s.u8(0xab);
    s.u16(0xbeef);
    s.u32(0xdeadbeefu);
    s.u64(0x0123456789abcdefull);
    s.i64(-42);
    s.f64(3.14159265358979);
    s.f64(-0.0);
    s.boolean(true);
    s.boolean(false);
    s.str("hello");
    s.str("");
    const std::uint8_t raw[3] = {1, 2, 3};
    s.bytes(raw, 3);

    Deserializer d(s.frame());
    EXPECT_EQ(d.u8(), 0xab);
    EXPECT_EQ(d.u16(), 0xbeef);
    EXPECT_EQ(d.u32(), 0xdeadbeefu);
    EXPECT_EQ(d.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(d.i64(), -42);
    EXPECT_EQ(d.f64(), 3.14159265358979);
    const double neg_zero = d.f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero)); // bit-exact, not value-equal
    EXPECT_TRUE(d.boolean());
    EXPECT_FALSE(d.boolean());
    EXPECT_EQ(d.str(), "hello");
    EXPECT_EQ(d.str(), "");
    std::uint8_t out[3] = {};
    d.bytes(out, 3);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[2], 3);
    EXPECT_TRUE(d.ok());
    EXPECT_EQ(d.remaining(), 0u);
}

TEST(Snapshot, VectorsRoundTrip)
{
    Serializer s;
    s.vecU8({9, 8, 7});
    s.vecU32({1u << 30, 2});
    s.vecU64({1ull << 60});
    s.vecF64({1.5, -2.5, 0.0});
    const std::vector<std::string> names = {"a", "bc", "def"};
    s.vec(names, [&s](const std::string &n) { s.str(n); });

    Deserializer d(s.frame());
    std::vector<std::uint8_t> v8;
    std::vector<std::uint32_t> v32;
    std::vector<std::uint64_t> v64;
    std::vector<double> vf;
    d.vecU8(v8);
    d.vecU32(v32);
    d.vecU64(v64);
    d.vecF64(vf);
    std::vector<std::string> got;
    d.readVec(got, 8, [&d]() { return d.str(); });
    EXPECT_TRUE(d.ok());
    EXPECT_EQ(v8, (std::vector<std::uint8_t>{9, 8, 7}));
    EXPECT_EQ(v32, (std::vector<std::uint32_t>{1u << 30, 2}));
    EXPECT_EQ(v64, (std::vector<std::uint64_t>{1ull << 60}));
    EXPECT_EQ(vf, (std::vector<double>{1.5, -2.5, 0.0}));
    EXPECT_EQ(got, names);
}

TEST(Snapshot, SectionsNestAndValidate)
{
    Serializer s;
    s.beginSection("OUTR");
    s.u32(1);
    s.beginSection("INNR");
    s.u64(2);
    s.endSection();
    s.u32(3);
    s.endSection();

    Deserializer d(s.frame());
    ASSERT_TRUE(d.beginSection("OUTR"));
    EXPECT_EQ(d.u32(), 1u);
    ASSERT_TRUE(d.beginSection("INNR"));
    EXPECT_EQ(d.u64(), 2u);
    d.endSection();
    EXPECT_EQ(d.u32(), 3u);
    d.endSection();
    EXPECT_TRUE(d.ok());
}

TEST(Snapshot, WrongSectionTagFailsSoftly)
{
    Serializer s;
    s.beginSection("GOOD");
    s.u32(7);
    s.endSection();

    Deserializer d(s.frame());
    EXPECT_FALSE(d.beginSection("EVIL"));
    EXPECT_FALSE(d.ok());
    // Every subsequent read is a zero-valued no-op, never a crash.
    EXPECT_EQ(d.u64(), 0u);
    EXPECT_EQ(d.str(), "");
}

TEST(Snapshot, UnderconsumedSectionFails)
{
    Serializer s;
    s.beginSection("SECT");
    s.u32(1);
    s.u32(2);
    s.endSection();

    Deserializer d(s.frame());
    ASSERT_TRUE(d.beginSection("SECT"));
    EXPECT_EQ(d.u32(), 1u);
    d.endSection(); // 4 bytes left unread: reader/writer drift
    EXPECT_FALSE(d.ok());
}

TEST(Snapshot, FrameRejectsTampering)
{
    Serializer s;
    s.u64(12345);
    s.str("payload");
    const std::vector<std::uint8_t> good = s.frame();
    ASSERT_TRUE(Deserializer(good).ok());

    // Any single flipped byte anywhere must be caught.
    for (std::size_t pos :
         {std::size_t{0}, std::size_t{9}, good.size() / 2,
          good.size() - 1}) {
        std::vector<std::uint8_t> bad = good;
        bad[pos] ^= 0x01;
        Deserializer d(std::move(bad));
        std::uint64_t v = d.u64();
        EXPECT_FALSE(d.ok()) << "flip at " << pos << " accepted";
        EXPECT_EQ(v, 0u);
    }

    // Truncation at every boundary region.
    for (std::size_t keep : {std::size_t{0}, std::size_t{7},
                             std::size_t{20}, good.size() - 1}) {
        std::vector<std::uint8_t> bad(good.begin(),
                                      good.begin() + keep);
        EXPECT_FALSE(Deserializer(std::move(bad)).ok())
            << "truncated to " << keep << " accepted";
    }
}

TEST(Snapshot, FrameRejectsFutureVersion)
{
    Serializer s;
    s.u32(1);
    std::vector<std::uint8_t> frame = s.frame();
    // Bump the version field (bytes 8..11) and re-seal the CRC so only
    // the version check can object.
    frame[8] = static_cast<std::uint8_t>(kFormatVersion + 1);
    const std::uint32_t crc = crc32(frame.data(), frame.size() - 4);
    for (unsigned i = 0; i < 4; i++)
        frame[frame.size() - 4 + i] =
            static_cast<std::uint8_t>(crc >> (8 * i));
    EXPECT_FALSE(Deserializer(std::move(frame)).ok());
}

TEST(Snapshot, ArrayLenIsCappedAgainstRemainingBytes)
{
    // A corrupt (huge) element count must not drive a giant resize:
    // arrayLen caps against the bytes actually left in the stream.
    Serializer s;
    s.u64(1ull << 60); // claims 2^60 elements...
    s.u32(7);          // ...but only 4 bytes follow
    Deserializer d(s.frame());
    std::vector<std::uint64_t> v;
    d.readVec(v, 8, [&d]() { return d.u64(); });
    EXPECT_FALSE(d.ok());
    EXPECT_TRUE(v.empty());
}

TEST(Snapshot, ExplicitFailLatchesFirstError)
{
    Serializer s;
    s.u32(1);
    Deserializer d(s.frame());
    d.fail("config mismatch");
    d.fail("later error");
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error(), "config mismatch"); // root cause wins
    EXPECT_EQ(d.u32(), 0u);
}

TEST(Snapshot, AtomicWriteAndReadFile)
{
    const std::string path = "/tmp/morc_snapshot_atomic_test.bin";
    const std::string v1 = "first version";
    const std::string v2 = "second, longer version of the contents";
    ASSERT_TRUE(atomicWriteFile(path, v1.data(), v1.size()));
    ASSERT_TRUE(atomicWriteFile(path, v2.data(), v2.size()));
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(readFile(path, got));
    EXPECT_EQ(std::string(got.begin(), got.end()), v2);
    // No temp file may be left behind.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    std::remove(path.c_str());

    EXPECT_FALSE(readFile("/nonexistent/morc/snapshot", got));
    EXPECT_TRUE(got.empty());
}

TEST(Snapshot, WriteFileFromFileRoundTrip)
{
    const std::string path = "/tmp/morc_snapshot_file_test.snap";
    Serializer s;
    s.beginSection("TEST");
    s.u64(0xfeedface);
    s.str("state");
    s.endSection();
    ASSERT_TRUE(s.writeFile(path));

    Deserializer d = Deserializer::fromFile(path);
    std::remove(path.c_str());
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(d.beginSection("TEST"));
    EXPECT_EQ(d.u64(), 0xfeedfaceu);
    EXPECT_EQ(d.str(), "state");
    d.endSection();
    EXPECT_TRUE(d.ok());

    EXPECT_FALSE(Deserializer::fromFile("/nonexistent/path.snap").ok());
}

TEST(Snapshot, Crc32MatchesKnownVector)
{
    // IEEE 802.3 check value for "123456789".
    const char *msg = "123456789";
    EXPECT_EQ(crc32(msg, 9), 0xCBF43926u);
    // Incremental == one-shot.
    const std::uint32_t part = crc32(msg, 4);
    EXPECT_EQ(crc32(msg + 4, 5, part), 0xCBF43926u);
}

} // namespace
} // namespace snap
} // namespace morc
