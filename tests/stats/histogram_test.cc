/**
 * @file
 * stats::Histogram edge cases: the degenerate no-bounds histogram, the
 * overflow bucket, and the merge/difference operators the warm-up
 * rebase path depends on. These paths carried real bugs (label() used
 * to dereference bounds_.back() with no bounds), so they get tests of
 * their own rather than riding the sweep goldens.
 */

#include <gtest/gtest.h>

#include "stats/histogram.hh"

namespace morc {
namespace {

TEST(Histogram, EmptyBoundsIsSingleCatchAllBucket)
{
    stats::Histogram h({});
    ASSERT_EQ(h.numBuckets(), 1u);
    EXPECT_EQ(h.label(0), "all");
    h.record(0);
    h.record(12345);
    h.record(~0ull);
    EXPECT_EQ(h.count(0), 3u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 1.0);
}

TEST(Histogram, BoundsAreInclusiveAndOverflowCatchesTheRest)
{
    stats::Histogram h({10, 20});
    ASSERT_EQ(h.numBuckets(), 3u);
    h.record(10); // inclusive upper bound -> bucket 0
    h.record(11); // first value of bucket 1
    h.record(20); // inclusive upper bound -> bucket 1
    h.record(21); // overflow
    h.record(1u << 30, 5); // weighted overflow
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 6u);
    EXPECT_EQ(h.total(), 9u);
    EXPECT_EQ(h.label(0), "<=10");
    EXPECT_EQ(h.label(1), "11-20");
    EXPECT_EQ(h.label(2), ">20");
}

TEST(Histogram, FractionOfEmptyHistogramIsZero)
{
    stats::Histogram h({10});
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Histogram, MergeAddsBucketWise)
{
    stats::Histogram a({10, 20});
    stats::Histogram b({10, 20});
    a.record(5);
    a.record(15);
    b.record(15, 3);
    b.record(25);
    a += b;
    EXPECT_EQ(a.count(0), 1u);
    EXPECT_EQ(a.count(1), 4u);
    EXPECT_EQ(a.count(2), 1u);
    EXPECT_EQ(a.total(), 6u);
    // b is unchanged.
    EXPECT_EQ(b.total(), 4u);
}

TEST(Histogram, DifferenceSubtractsWarmupSnapshot)
{
    // The rebase pattern: snapshot at end of warm-up, subtract at end
    // of the measured run.
    stats::Histogram full({10, 20});
    full.record(5);
    full.record(15, 2);
    full.record(25);
    stats::Histogram warmup({10, 20});
    warmup.record(5);
    warmup.record(15);
    const stats::Histogram measured = full - warmup;
    EXPECT_EQ(measured.count(0), 0u);
    EXPECT_EQ(measured.count(1), 1u);
    EXPECT_EQ(measured.count(2), 1u);
    EXPECT_EQ(measured.total(), 2u);
}

TEST(Histogram, DifferenceOfSelfIsEmpty)
{
    stats::Histogram h({10});
    h.record(3, 7);
    const stats::Histogram d = h - h;
    EXPECT_EQ(d.total(), 0u);
    EXPECT_EQ(d.count(0), 0u);
}

TEST(Histogram, ClearZeroesCountsButKeepsBucketing)
{
    stats::Histogram h({10});
    h.record(5);
    h.record(50);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(0), 0u);
    EXPECT_EQ(h.count(1), 0u);
    ASSERT_EQ(h.numBuckets(), 2u);
    h.record(5);
    EXPECT_EQ(h.count(0), 1u);
}

#if MORC_CHECKS_ENABLED
TEST(HistogramDeath, MismatchedBucketingIsRejected)
{
    stats::Histogram a({10});
    stats::Histogram b({10, 20});
    EXPECT_DEATH(a += b, "different bucketing");
    EXPECT_DEATH((void)(a - b), "different bucketing");
}

TEST(HistogramDeath, UnderflowingDifferenceIsRejected)
{
    stats::Histogram a({10});
    stats::Histogram b({10});
    b.record(5);
    EXPECT_DEATH((void)(a - b), "underflows bucket");
}
#endif

} // namespace
} // namespace morc
