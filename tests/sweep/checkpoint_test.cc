/**
 * @file
 * Tests for the crash-safe sweep journal: RunRecord serialization
 * round-trips bit-exactly (doubles travel as IEEE-754 bit patterns),
 * recovery keeps every intact entry and discards a torn or corrupt
 * tail, and a "resumed" sweep that mixes journaled and fresh records
 * reproduces the original report byte for byte.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "snapshot/snapshot.hh"
#include "stats/report.hh"
#include "sweep/journal.hh"

namespace morc {
namespace sweep {
namespace {

stats::RunRecord
makeRecord(const std::string &key, double salt)
{
    stats::RunRecord rec;
    rec.key = key;
    rec.label("workload", "gcc");
    rec.label("scheme", "MORC");
    rec.metric("ipc", 0.731 + salt);
    rec.metric("ratio", 2.25 * salt);
    rec.metric("weird", 1.0 / 3.0); // must survive bit-exactly
    stats::Histogram h({10, 20, 40});
    h.record(5);
    h.record(15);
    h.record(999);
    rec.histograms.emplace_back("lat", h);
    rec.percentile("latency.all", "p50", 32.0 + salt);
    rec.percentile("latency.all", "p99", 512.0);
    rec.lifetimePoint("years", 0.0123 * salt);
    rec.lifetimePoint("imbalance", 1.0 / 3.0); // bit-exact survival
    rec.series.epochCycles = 1000;
    rec.series.samples = 3;
    rec.series.droppedEpochs = 1;
    telemetry::Series ser;
    ser.name = "llc.hits";
    ser.kind = telemetry::ProbeKind::Counter;
    ser.values = {1.0, 2.0, 3.5};
    rec.series.series.push_back(ser);
    rec.trace.tracks = {"llc", "core0"};
    rec.trace.events.push_back(telemetry::Event{
        123, telemetry::EventKind::LogFlush, 0, 7, 9});
    rec.trace.dropped = 2;
    return rec;
}

std::vector<std::uint8_t>
recordBytes(const stats::RunRecord &rec)
{
    snap::Serializer s;
    saveRunRecord(s, rec);
    return s.frame();
}

TEST(Journal, RunRecordRoundTripsBitExactly)
{
    const stats::RunRecord rec = makeRecord("fig6/gcc/MORC", 0.125);
    snap::Deserializer d(recordBytes(rec));
    const stats::RunRecord got = loadRunRecord(d);
    ASSERT_TRUE(d.ok()) << d.error();

    EXPECT_EQ(got.key, rec.key);
    EXPECT_EQ(got.labels, rec.labels);
    ASSERT_EQ(got.metrics.size(), rec.metrics.size());
    for (std::size_t i = 0; i < got.metrics.size(); i++) {
        EXPECT_EQ(got.metrics[i].first, rec.metrics[i].first);
        EXPECT_EQ(got.metrics[i].second, rec.metrics[i].second);
    }
    EXPECT_EQ(got.series.samples, rec.series.samples);
    EXPECT_EQ(got.series.series[0].values, rec.series.series[0].values);
    EXPECT_EQ(got.trace.tracks, rec.trace.tracks);
    EXPECT_EQ(got.trace.events.size(), rec.trace.events.size());
    EXPECT_EQ(got.trace.dropped, rec.trace.dropped);

    // The loaded record re-serializes to the very same bytes — the
    // property the resume path's byte-identity rests on.
    EXPECT_EQ(recordBytes(got), recordBytes(rec));
}

TEST(Journal, RejectsBadProbeAndEventKinds)
{
    stats::RunRecord rec = makeRecord("k", 1.0);
    snap::Serializer s;
    saveRunRecord(s, rec);
    // Corrupting an enum byte beyond its max must latch an error, not
    // fabricate an out-of-range enum value. Rather than hunt the byte
    // offset, replay through a record whose kind we bump directly.
    rec.series.series[0].kind = static_cast<telemetry::ProbeKind>(9);
    snap::Deserializer d(recordBytes(rec));
    loadRunRecord(d);
    EXPECT_FALSE(d.ok());
}

TEST(Journal, AppendLoadLookup)
{
    const std::string path = "/tmp/morc_journal_test.journal";
    std::remove(path.c_str());
    {
        Journal j(path);
        EXPECT_EQ(j.load(), 0u); // missing file = fresh sweep
        j.append(makeRecord("a", 1.0));
        j.append(makeRecord("b", 2.0));
        j.append(makeRecord("c", 3.0));
        EXPECT_EQ(j.size(), 3u);
    }
    Journal j(path);
    EXPECT_EQ(j.load(), 3u);
    ASSERT_NE(j.lookup("b"), nullptr);
    EXPECT_EQ(j.lookup("b")->key, "b");
    EXPECT_EQ(recordBytes(*j.lookup("b")),
              recordBytes(makeRecord("b", 2.0)));
    EXPECT_EQ(j.lookup("nope"), nullptr);
    std::remove(path.c_str());
}

TEST(Journal, TornTailKeepsEarlierEntries)
{
    const std::string path = "/tmp/morc_journal_torn.journal";
    std::remove(path.c_str());
    {
        Journal j(path);
        j.append(makeRecord("a", 1.0));
        j.append(makeRecord("b", 2.0));
        j.append(makeRecord("c", 3.0));
    }
    // Tear the last entry: the process died mid-append.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(std::filesystem::exists(path), true);
    std::filesystem::resize_file(path, static_cast<std::size_t>(size) - 9);

    Journal j(path);
    EXPECT_EQ(j.load(), 2u);
    EXPECT_NE(j.lookup("a"), nullptr);
    EXPECT_NE(j.lookup("b"), nullptr);
    EXPECT_EQ(j.lookup("c"), nullptr); // torn entry re-simulated
    std::remove(path.c_str());
}

TEST(Journal, CorruptEntryEndsRecoveryThere)
{
    const std::string path = "/tmp/morc_journal_corrupt.journal";
    std::remove(path.c_str());
    long firstEnd = 0;
    {
        Journal j(path);
        j.append(makeRecord("a", 1.0));
        std::FILE *f = std::fopen(path.c_str(), "rb");
        std::fseek(f, 0, SEEK_END);
        firstEnd = std::ftell(f);
        std::fclose(f);
        j.append(makeRecord("b", 2.0));
        j.append(makeRecord("c", 3.0));
    }
    // Flip one payload byte inside entry "b".
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, firstEnd + 40, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, firstEnd + 40, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);

    Journal j(path);
    EXPECT_EQ(j.load(), 1u); // only "a" survives; suffix discarded
    EXPECT_NE(j.lookup("a"), nullptr);
    std::remove(path.c_str());
}

TEST(Journal, ResumeReproducesRecordsBitExactly)
{
    // A sweep of six "tasks", killed after three: the resumed run
    // takes a/b/c from the journal and simulates d/e/f fresh. The
    // combined record set must serialize identically to an
    // uninterrupted run's.
    const std::string path = "/tmp/morc_journal_resume.journal";
    std::remove(path.c_str());
    const char *keys[] = {"a", "b", "c", "d", "e", "f"};

    std::vector<std::vector<std::uint8_t>> uninterrupted;
    for (int i = 0; i < 6; i++)
        uninterrupted.push_back(recordBytes(makeRecord(keys[i], i * 0.5)));

    {
        Journal first(path);
        for (int i = 0; i < 3; i++)
            first.append(makeRecord(keys[i], i * 0.5));
        // ... killed here ...
    }
    Journal resumed(path);
    ASSERT_EQ(resumed.load(), 3u);
    for (int i = 0; i < 6; i++) {
        const stats::RunRecord *done = resumed.lookup(keys[i]);
        const stats::RunRecord rec =
            done ? *done : makeRecord(keys[i], i * 0.5);
        EXPECT_EQ(recordBytes(rec), uninterrupted[i]) << keys[i];
        EXPECT_EQ(done != nullptr, i < 3);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace sweep
} // namespace morc
