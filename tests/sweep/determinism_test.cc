/**
 * @file
 * Golden-stats determinism regression tests.
 *
 * (a) The same sweep run on 1 thread and on 8 threads must serialize to
 *     byte-identical JSON — the engine's core guarantee.
 * (b) A checked-in golden report for one small configuration catches
 *     silent stat drift: any change to the simulator, the compressors,
 *     or the report encoding that moves a number fails here first.
 *     Regenerate deliberately with MORC_UPDATE_GOLDEN=1 (see
 *     tests/sweep/golden/README).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/system.hh"
#include "stats/report.hh"
#include "sweep/sweep.hh"

#ifndef MORC_GOLDEN_DIR
#error "MORC_GOLDEN_DIR must point at tests/sweep/golden"
#endif

namespace morc {
namespace {

constexpr std::uint64_t kInstr = 25'000;
constexpr std::uint64_t kWarmup = 25'000;

stats::RunRecord
miniRun(sim::Scheme scheme, const std::string &workload,
        bool with_histogram)
{
    sim::SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.llcBytesPerCore = 64 * 1024;
    cfg.ratioSampleInterval = 10'000;
    stats::Histogram hist({64, 128, 256, 512});
    stats::Histogram latHist({16, 32, 64, 128});
    if (with_histogram) {
        cfg.decompressedBytesHistogram = &hist;
        cfg.hitLatencyHistogram = &latHist;
    }
    sim::System sys(cfg, {trace::resolveWorkload(workload)});
    const sim::RunResult r = sys.run(kInstr, kWarmup);

    stats::RunRecord rec;
    rec.label("workload", workload);
    rec.label("scheme", sim::schemeName(scheme));
    rec.metric("ratio", r.compressionRatio);
    rec.metric("gb_per_binstr", r.gbPerBillionInstr());
    rec.metric("ipc", r.cores[0].ipc());
    rec.metric("throughput", r.cores[0].throughput());
    rec.metric("completion_cycles",
               static_cast<double>(r.completionCycles));
    rec.metric("mem_reads", static_cast<double>(r.memReads));
    rec.metric("mem_writes", static_cast<double>(r.memWrites));
    if (with_histogram) {
        rec.histograms.emplace_back("log_position_bytes", hist);
        rec.histograms.emplace_back("hit_latency_cycles", latHist);
    }
    return rec;
}

std::vector<sweep::Task>
miniTasks()
{
    std::vector<sweep::Task> tasks;
    for (const std::string workload : {"gcc", "mcf"}) {
        for (sim::Scheme scheme :
             {sim::Scheme::Uncompressed, sim::Scheme::Morc}) {
            const bool hist = scheme == sim::Scheme::Morc;
            tasks.push_back(sweep::Task{
                "mini/" + workload + "/" + sim::schemeName(scheme),
                [=](std::uint64_t) {
                    return miniRun(scheme, workload, hist);
                }});
        }
    }
    return tasks;
}

stats::Report
miniReport(unsigned jobs)
{
    stats::Report rep;
    rep.figure = "mini";
    rep.title = "determinism regression configuration";
    rep.instrBudget = kInstr;
    rep.warmupBudget = kWarmup;
    rep.runs = sweep::Engine(jobs).run(miniTasks());
    return rep;
}

TEST(SweepDeterminism, SerialAndParallelReportsAreByteIdentical)
{
    const std::string serial = miniReport(1).toJson();
    const std::string parallel = miniReport(8).toJson();
    ASSERT_EQ(serial, parallel);
    // And re-running is stable, i.e. no state leaks between sweeps.
    EXPECT_EQ(serial, miniReport(8).toJson());
}

TEST(SweepDeterminism, MatchesGoldenReport)
{
    const std::string path =
        std::string(MORC_GOLDEN_DIR) + "/mini_report.json";
    const std::string fresh = miniReport(8).toJson();
    if (std::getenv("MORC_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        out << fresh;
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        GTEST_SKIP() << "golden updated, re-run without "
                        "MORC_UPDATE_GOLDEN";
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing; run once with MORC_UPDATE_GOLDEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), fresh)
        << "stats drifted from the checked-in golden report; if the "
           "change is intentional, regenerate with MORC_UPDATE_GOLDEN=1";
}

TEST(SweepDeterminism, StableSeedIsPureAndDiscriminating)
{
    static_assert(sweep::stableSeed("fig6/gcc/MORC") ==
                  sweep::stableSeed("fig6/gcc/MORC"));
    static_assert(sweep::stableSeed("fig6/gcc/MORC") !=
                  sweep::stableSeed("fig6/gcc/SC2"));
    // Pin the hash itself: a silent change to the seed derivation would
    // alter every seeded task's stream while each run still looked
    // self-consistent.
    EXPECT_EQ(sweep::stableSeed("morc"), 0xd7d265152317f292ull);
}

TEST(SweepDeterminism, TaskFailurePropagatesWithKey)
{
    std::vector<sweep::Task> tasks = miniTasks();
    tasks.push_back(sweep::Task{
        "mini/broken", [](std::uint64_t) -> stats::RunRecord {
            throw std::runtime_error("synthetic failure");
        }});
    try {
        sweep::Engine(4).run(tasks);
        FAIL() << "expected sweep failure";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("mini/broken"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("synthetic failure"),
                  std::string::npos);
    }
}

} // namespace
} // namespace morc
