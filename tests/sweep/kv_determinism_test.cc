/**
 * @file
 * KV-serving sweep determinism regression tests (schema v5).
 *
 * The KV figures are advertised as pure functions of their
 * configuration: the multi-tenant generator is seeded per tenant, the
 * service clock is logical, and report assembly is task-ordered. These
 * tests pin that:
 *
 * (a) a mini KV sweep (two schemes through the full generator ->
 *     front cache -> tiered store stack, with percentile sections) is
 *     byte-identical on 1 thread and on 8 threads,
 * (b) a checked-in golden report (tests/sweep/golden/kv_report.json)
 *     catches silent drift in the generator, value synthesis, tier
 *     arithmetic, or the v5 serialization — regenerate
 *     deliberately with MORC_UPDATE_GOLDEN=1,
 * (c) the report carries the schema v5 marker and a well-formed
 *     "percentiles" section, and
 * (d) per-tenant QoS shares hold exactly in the recorded metrics.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "kv/service.hh"
#include "stats/report.hh"
#include "sweep/sweep.hh"

#ifndef MORC_GOLDEN_DIR
#error "MORC_GOLDEN_DIR must point at tests/sweep/golden"
#endif

namespace morc {
namespace {

constexpr std::uint64_t kRequests = 3'000;

kv::ServiceConfig
miniKvConfig(sim::Scheme scheme)
{
    kv::ServiceConfig cfg;
    cfg.scheme = scheme;
    cfg.frontBytes = 64 * 1024;
    cfg.tier.dramBytes = 256 * 1024;
    cfg.tier.ssdBytes = 1024 * 1024;
    cfg.seed = 0x6b76;
    cfg.values.seed = 0x76616c;
    cfg.telemetryEpoch = 100'000;
    kv::TenantConfig social;
    social.name = "social";
    social.keys = 4096;
    social.theta = 1.1;
    social.weight = 3;
    social.setFrac = 0.05;
    social.driftPeriod = 512;
    social.driftStride = 97;
    kv::TenantConfig analytics;
    analytics.name = "analytics";
    analytics.keys = 8192;
    analytics.theta = 0.7;
    analytics.weight = 1;
    analytics.setFrac = 0.4;
    cfg.tenants = {social, analytics};
    return cfg;
}

stats::RunRecord
kvRun(sim::Scheme scheme)
{
    const kv::ServiceConfig cfg = miniKvConfig(scheme);
    kv::Service svc(cfg);
    svc.run(kRequests);

    stats::RunRecord rec;
    rec.label("scheme", sim::schemeName(scheme));
    rec.label("tenants", std::to_string(cfg.tenants.size()));
    rec.metric("requests", double(svc.requests()));
    rec.metric("cycles", double(svc.cycles()));
    std::uint64_t reads = 0, hits = 0;
    for (unsigned t = 0; t < cfg.tenants.size(); t++) {
        const kv::TenantStats &ts = svc.tenantStats(t);
        reads += ts.lineReads;
        hits += ts.frontHits;
        rec.metric("requests_" + cfg.tenants[t].name,
                   double(ts.requests));
    }
    rec.metric("front_hit_rate", reads ? double(hits) / reads : 0.0);
    rec.metric("dram_hits", double(svc.tiers().stats().dramHits));
    rec.metric("ssd_hits", double(svc.tiers().stats().ssdHits));
    rec.metric("origin_fetches",
               double(svc.tiers().stats().originFetches));
    const std::pair<const char *, double> points[] = {
        {"p50", 0.50}, {"p99", 0.99}, {"p99.9", 0.999}};
    for (const auto &p : points)
        rec.percentile("latency.all", p.first,
                       kv::histPercentile(svc.latency(), p.second));
    rec.histograms.emplace_back("latency", svc.latency());
    rec.series = svc.series();
    return rec;
}

stats::Report
kvReport(unsigned jobs)
{
    std::vector<sweep::Task> tasks;
    for (sim::Scheme scheme :
         {sim::Scheme::Uncompressed, sim::Scheme::Morc}) {
        tasks.push_back(sweep::Task{
            std::string("kv-mini/") + sim::schemeName(scheme),
            [scheme](std::uint64_t) { return kvRun(scheme); }});
    }
    stats::Report rep;
    rep.figure = "kv-mini";
    rep.title = "KV serving determinism configuration";
    rep.instrBudget = kRequests;
    rep.runs = sweep::Engine(jobs).run(tasks);
    return rep;
}

TEST(KvDeterminism, SerialAndParallelReportsAreByteIdentical)
{
    const std::string serial = kvReport(1).toJson();
    const std::string parallel = kvReport(8).toJson();
    ASSERT_EQ(serial, parallel);
    // Re-running is stable: no hidden state leaks across sweeps.
    EXPECT_EQ(serial, kvReport(8).toJson());
}

TEST(KvDeterminism, ReportCarriesSchemaV5Percentiles)
{
    const stats::Report rep = kvReport(8);
    const std::string json = rep.toJson();
    EXPECT_NE(json.find("\"morc.sweep.report/v5\""), std::string::npos);
    EXPECT_NE(json.find("\"percentiles\""), std::string::npos);
    EXPECT_NE(json.find("\"p99.9\""), std::string::npos);

    const stats::RunRecord *morc = rep.find("kv-mini/MORC");
    ASSERT_NE(morc, nullptr);
    ASSERT_EQ(morc->percentiles.size(), 1u);
    const auto &set = morc->percentiles[0];
    EXPECT_EQ(set.first, "latency.all");
    ASSERT_EQ(set.second.size(), 3u);
    EXPECT_LE(set.second[0].second, set.second[1].second); // p50<=p99
    EXPECT_LE(set.second[1].second, set.second[2].second);

    // Exact QoS shares surface in the metrics: weights 3:1 over 3000.
    EXPECT_EQ(morc->get("requests_social"), 2250.0);
    EXPECT_EQ(morc->get("requests_analytics"), 750.0);
}

TEST(KvDeterminism, MatchesGoldenReport)
{
    const std::string path =
        std::string(MORC_GOLDEN_DIR) + "/kv_report.json";
    const std::string fresh = kvReport(8).toJson();
    if (std::getenv("MORC_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        out << fresh;
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        GTEST_SKIP() << "golden updated, re-run without "
                        "MORC_UPDATE_GOLDEN";
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing; run once with MORC_UPDATE_GOLDEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), fresh)
        << "KV report drifted from the checked-in golden; if the "
           "change is intentional, regenerate with "
           "MORC_UPDATE_GOLDEN=1";
}

} // namespace
} // namespace morc
