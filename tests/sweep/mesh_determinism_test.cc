/**
 * @file
 * Mesh-substrate determinism regression tests.
 *
 * The banked-LLC / NoC path adds per-link and per-channel busy-until
 * state to the simulation; these tests pin that none of it leaks host
 * nondeterminism into the results:
 *
 * (a) a 4x4 banked sweep serialized on 1 thread and on 8 threads must
 *     be byte-identical JSON, and
 * (b) a checked-in golden report (tests/sweep/golden/mesh_report.json)
 *     catches silent drift in the mesh timing model. Regenerate
 *     deliberately with MORC_UPDATE_GOLDEN=1.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/system.hh"
#include "stats/report.hh"
#include "sweep/sweep.hh"

#ifndef MORC_GOLDEN_DIR
#error "MORC_GOLDEN_DIR must point at tests/sweep/golden"
#endif

namespace morc {
namespace {

constexpr std::uint64_t kInstr = 6'000;
constexpr std::uint64_t kWarmup = 6'000;

stats::RunRecord
meshRun(sim::Scheme scheme)
{
    sim::SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.useMesh = true;
    cfg.meshCfg.width = 4;
    cfg.meshCfg.height = 4;
    cfg.meshCfg.memControllers = 2;
    cfg.numCores = cfg.meshCfg.tiles();
    cfg.llcBytesPerCore = 32 * 1024;
    cfg.bandwidthPerCore = 1600e6 / cfg.numCores;
    cfg.ratioSampleInterval = 20'000;

    const char *const programs[] = {"gcc", "mcf", "omnetpp", "soplex"};
    std::vector<trace::BenchmarkSpec> specs;
    for (unsigned c = 0; c < cfg.numCores; c++)
        specs.push_back(trace::resolveWorkload(programs[c % 4]));

    sim::System sys(cfg, specs);
    const sim::RunResult r = sys.run(kInstr, kWarmup);
    EXPECT_TRUE(r.meshed);

    stats::RunRecord rec;
    rec.label("mesh", "4x4");
    rec.label("scheme", sim::schemeName(scheme));
    rec.metric("ratio", r.compressionRatio);
    rec.metric("gb_per_binstr", r.gbPerBillionInstr());
    rec.metric("mean_ipc", r.meanIpc());
    rec.metric("mean_throughput", r.meanThroughput());
    rec.metric("completion_cycles",
               static_cast<double>(r.completionCycles));
    rec.metric("mem_reads", static_cast<double>(r.memReads));
    rec.metric("mem_writes", static_cast<double>(r.memWrites));
    rec.metric("noc_messages", static_cast<double>(r.nocMessages));
    rec.metric("noc_mean_hops", r.nocMeanHops);
    rec.histograms.emplace_back("noc_hops", r.nocHopHist);
    rec.histograms.emplace_back("noc_queue_cycles", r.nocQueueHist);
    return rec;
}

std::vector<sweep::Task>
meshTasks()
{
    std::vector<sweep::Task> tasks;
    for (sim::Scheme scheme :
         {sim::Scheme::Uncompressed, sim::Scheme::Morc}) {
        tasks.push_back(sweep::Task{
            std::string("mesh-mini/4x4/") + sim::schemeName(scheme),
            [scheme](std::uint64_t) { return meshRun(scheme); }});
    }
    return tasks;
}

stats::Report
meshReport(unsigned jobs)
{
    stats::Report rep;
    rep.figure = "mesh-mini";
    rep.title = "4x4 banked-substrate determinism configuration";
    rep.instrBudget = kInstr;
    rep.warmupBudget = kWarmup;
    rep.runs = sweep::Engine(jobs).run(meshTasks());
    return rep;
}

TEST(MeshDeterminism, SerialAndParallelReportsAreByteIdentical)
{
    const std::string serial = meshReport(1).toJson();
    const std::string parallel = meshReport(8).toJson();
    ASSERT_EQ(serial, parallel);
    // Re-running is stable: no NoC/bank state leaks between sweeps.
    EXPECT_EQ(serial, meshReport(8).toJson());
}

TEST(MeshDeterminism, MatchesGoldenReport)
{
    const std::string path =
        std::string(MORC_GOLDEN_DIR) + "/mesh_report.json";
    const std::string fresh = meshReport(8).toJson();
    if (std::getenv("MORC_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        out << fresh;
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        GTEST_SKIP() << "golden updated, re-run without "
                        "MORC_UPDATE_GOLDEN";
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing; run once with MORC_UPDATE_GOLDEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), fresh)
        << "mesh stats drifted from the checked-in golden report; if "
           "the change is intentional, regenerate with "
           "MORC_UPDATE_GOLDEN=1";
}

TEST(MeshDeterminism, MorcOutperformsUncompressedPerTile)
{
    // The acceptance property of the tiled substrate: under the fixed
    // total bandwidth cap, the compressed LLC sustains at least the
    // uncompressed throughput per tile (strictly better at full-scale
    // budgets; >= here keeps the tiny CI budget robust).
    const stats::Report rep = meshReport(8);
    EXPECT_GE(rep.metric("mesh-mini/4x4/MORC", "mean_throughput"),
              rep.metric("mesh-mini/4x4/Uncompressed",
                         "mean_throughput"));
}

} // namespace
} // namespace morc
