/**
 * @file
 * Concurrency tests for the work-stealing pool: saturation beyond the
 * thread count, exception propagation through futures, and accounting
 * under early cancellation (no result is ever silently lost).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sweep/pool.hh"

namespace morc {
namespace sweep {
namespace {

TEST(Pool, SaturationCompletesEveryTask)
{
    Pool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> ran{0};
    std::vector<std::future<int>> futures;
    constexpr int kTasks = 500; // far more tasks than threads
    for (int i = 0; i < kTasks; i++) {
        futures.push_back(pool.submit([i, &ran] {
            ran.fetch_add(1, std::memory_order_relaxed);
            return i * i;
        }));
    }
    long long sum = 0;
    for (int i = 0; i < kTasks; i++)
        sum += futures[i].get();
    EXPECT_EQ(ran.load(), kTasks);
    long long expect = 0;
    for (int i = 0; i < kTasks; i++)
        expect += static_cast<long long>(i) * i;
    EXPECT_EQ(sum, expect);
}

TEST(Pool, SingleThreadStillDrains)
{
    Pool pool(1);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; i++)
        futures.push_back(pool.submit([i] { return i; }));
    for (int i = 0; i < 64; i++)
        EXPECT_EQ(futures[i].get(), i);
}

TEST(Pool, ThrowingTaskPropagatesThroughFuture)
{
    Pool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    auto alsoOk = pool.submit([] { return 8; });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_EQ(alsoOk.get(), 8); // one failure does not poison the pool
    try {
        bad.get();
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

TEST(Pool, DestructionDrainsPendingWork)
{
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    {
        Pool pool(2);
        for (int i = 0; i < 100; i++) {
            futures.push_back(pool.submit([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ran.fetch_add(1);
            }));
        }
        // Destructor must wait for all queued work.
    }
    for (auto &f : futures)
        f.get(); // none may hang or hold a broken promise
    EXPECT_EQ(ran.load(), 100);
}

TEST(Pool, CancellationLosesNoResults)
{
    Pool pool(2);
    std::atomic<int> ran{0};
    std::vector<std::future<int>> futures;
    constexpr int kTasks = 200;
    for (int i = 0; i < kTasks; i++) {
        futures.push_back(pool.submit([i, &ran] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ran.fetch_add(1, std::memory_order_relaxed);
            return i;
        }));
    }
    // Cancel while the queue is mostly unstarted.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pool.cancel();

    int completed = 0, cancelled = 0;
    for (int i = 0; i < kTasks; i++) {
        try {
            EXPECT_EQ(futures[i].get(), i);
            completed++;
        } catch (const PoolCancelled &) {
            cancelled++;
        }
    }
    // Every submitted task is accounted for: it either ran to
    // completion or reported cancellation. Nothing vanished.
    EXPECT_EQ(completed + cancelled, kTasks);
    EXPECT_EQ(completed, ran.load());
    EXPECT_GT(cancelled, 0) << "cancel came too late to observe";
}

TEST(Pool, CancelIsIdempotentAndAllowsShutdown)
{
    Pool pool(3);
    for (int i = 0; i < 50; i++)
        pool.submit([] { return 1; });
    pool.cancel();
    pool.cancel();
    // Destructor must still join cleanly.
}

} // namespace
} // namespace sweep
} // namespace morc
