/**
 * @file
 * Telemetry determinism regression tests.
 *
 * The telemetry layer samples probes at simulated-cycle epoch
 * boundaries and records cycle-stamped events; both are advertised as
 * pure functions of the simulated configuration. These tests pin that:
 *
 * (a) a 4x4 banked sweep with telemetry *and* tracing enabled is
 *     byte-identical (report JSON and Chrome trace JSON) on 1 thread
 *     and on 8 threads,
 * (b) a checked-in golden report with series sections
 *     (tests/sweep/golden/telemetry_report.json) catches silent drift
 *     in probe wiring or sampling arithmetic — regenerate deliberately
 *     with MORC_UPDATE_GOLDEN=1,
 * (c) the MORC series actually evolve (a flat-lined LMT-occupancy
 *     series would satisfy determinism while observing nothing), and
 * (d) the trace carries the advertised log_flush events.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/system.hh"
#include "stats/report.hh"
#include "sweep/sweep.hh"
#include "telemetry/tracer.hh"

#ifndef MORC_GOLDEN_DIR
#error "MORC_GOLDEN_DIR must point at tests/sweep/golden"
#endif

namespace morc {
namespace {

constexpr std::uint64_t kInstr = 6'000;
constexpr std::uint64_t kWarmup = 6'000;
constexpr std::uint64_t kEpoch = 100'000; // ~20 samples per mini run

stats::RunRecord
telemetryRun(sim::Scheme scheme)
{
    // Same configuration as the mesh determinism mini sweep, plus
    // telemetry sampling and event tracing.
    sim::SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.useMesh = true;
    cfg.meshCfg.width = 4;
    cfg.meshCfg.height = 4;
    cfg.meshCfg.memControllers = 2;
    cfg.numCores = cfg.meshCfg.tiles();
    cfg.llcBytesPerCore = 32 * 1024;
    cfg.bandwidthPerCore = 1600e6 / cfg.numCores;
    cfg.ratioSampleInterval = 20'000;
    cfg.telemetryEpoch = kEpoch;
    cfg.traceEvents = true;

    const char *const programs[] = {"gcc", "mcf", "omnetpp", "soplex"};
    std::vector<trace::BenchmarkSpec> specs;
    for (unsigned c = 0; c < cfg.numCores; c++)
        specs.push_back(trace::resolveWorkload(programs[c % 4]));

    sim::System sys(cfg, specs);
    const sim::RunResult r = sys.run(kInstr, kWarmup);

    stats::RunRecord rec;
    rec.label("mesh", "4x4");
    rec.label("scheme", sim::schemeName(scheme));
    rec.metric("ratio", r.compressionRatio);
    rec.metric("completion_cycles",
               static_cast<double>(r.completionCycles));
    rec.metric("log_flushes",
               static_cast<double>(r.llcStats.logFlushes));
    rec.metric("lmt_conflict_evicts",
               static_cast<double>(r.llcStats.lmtConflictEvicts));
    rec.series = r.series;
    rec.trace = r.trace;
    return rec;
}

std::vector<sweep::Task>
telemetryTasks()
{
    std::vector<sweep::Task> tasks;
    for (sim::Scheme scheme :
         {sim::Scheme::Uncompressed, sim::Scheme::Morc}) {
        tasks.push_back(sweep::Task{
            std::string("telemetry-mini/4x4/") + sim::schemeName(scheme),
            [scheme](std::uint64_t) { return telemetryRun(scheme); }});
    }
    return tasks;
}

stats::Report
telemetryReport(unsigned jobs)
{
    stats::Report rep;
    rep.figure = "telemetry-mini";
    rep.title = "4x4 telemetry determinism configuration";
    rep.instrBudget = kInstr;
    rep.warmupBudget = kWarmup;
    rep.runs = sweep::Engine(jobs).run(telemetryTasks());
    return rep;
}

std::string
traceJson(const stats::Report &rep)
{
    std::vector<std::pair<std::string, telemetry::TraceBuffer>> traces;
    for (const auto &r : rep.runs)
        traces.emplace_back(r.key, r.trace);
    return telemetry::chromeTraceJson(traces);
}

const telemetry::Series *
findSeries(const stats::RunRecord &r, const std::string &name)
{
    for (const auto &s : r.series.series)
        if (s.name == name)
            return &s;
    return nullptr;
}

TEST(TelemetryDeterminism, SerialAndParallelOutputsAreByteIdentical)
{
    const stats::Report serial = telemetryReport(1);
    const stats::Report parallel = telemetryReport(8);
    ASSERT_EQ(serial.toJson(), parallel.toJson());
    ASSERT_EQ(traceJson(serial), traceJson(parallel));
    // Re-running is stable: no sampler/tracer state leaks.
    EXPECT_EQ(serial.toJson(), telemetryReport(8).toJson());
}

TEST(TelemetryDeterminism, MatchesGoldenReport)
{
    const std::string path =
        std::string(MORC_GOLDEN_DIR) + "/telemetry_report.json";
    const std::string fresh = telemetryReport(8).toJson();
    if (std::getenv("MORC_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        out << fresh;
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        GTEST_SKIP() << "golden updated, re-run without "
                        "MORC_UPDATE_GOLDEN";
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing; run once with MORC_UPDATE_GOLDEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), fresh)
        << "telemetry series drifted from the checked-in golden report; "
           "if the change is intentional, regenerate with "
           "MORC_UPDATE_GOLDEN=1";
}

TEST(TelemetryDeterminism, MorcSeriesEvolveOverEpochs)
{
    const stats::Report rep = telemetryReport(8);
    const stats::RunRecord *morc =
        rep.find("telemetry-mini/4x4/MORC");
    ASSERT_NE(morc, nullptr);
    ASSERT_FALSE(morc->series.empty());
    EXPECT_EQ(morc->series.epochCycles, kEpoch);
    EXPECT_GE(morc->series.samples, 4u);

    // Live-log population and LMT occupancy must move over the run —
    // static series would mean the probes read dead state.
    for (const char *name : {"llc.live_logs", "llc.lmt_occupancy"}) {
        const telemetry::Series *s = findSeries(*morc, name);
        ASSERT_NE(s, nullptr) << name;
        ASSERT_GE(s->values.size(), 2u) << name;
        bool moved = false;
        for (std::size_t i = 1; i < s->values.size() && !moved; i++)
            moved = s->values[i] != s->values[0];
        EXPECT_TRUE(moved) << name << " never changed";
    }

    // Counters sample cumulatively, so they must be nondecreasing.
    const telemetry::Series *flushes =
        findSeries(*morc, "llc.log_flushes");
    ASSERT_NE(flushes, nullptr);
    for (std::size_t i = 1; i < flushes->values.size(); i++)
        EXPECT_GE(flushes->values[i], flushes->values[i - 1]);
    EXPECT_GT(flushes->values.back(), 0.0);

    // Uncompressed runs carry the base catalog only (no MORC probes).
    const stats::RunRecord *unc =
        rep.find("telemetry-mini/4x4/Uncompressed");
    ASSERT_NE(unc, nullptr);
    EXPECT_EQ(findSeries(*unc, "llc.live_logs"), nullptr);
    EXPECT_NE(findSeries(*unc, "llc.valid_lines"), nullptr);
}

TEST(TelemetryDeterminism, TraceCarriesLogFlushEvents)
{
    const stats::Report rep = telemetryReport(8);
    const stats::RunRecord *morc =
        rep.find("telemetry-mini/4x4/MORC");
    ASSERT_NE(morc, nullptr);
    EXPECT_GT(morc->trace.countKind(telemetry::EventKind::LogFlush), 0u);
    // Trace counts must agree with the counters the same run kept.
    EXPECT_EQ(morc->trace.dropped, 0u);
    EXPECT_EQ(morc->trace.countKind(telemetry::EventKind::LogFlush),
              static_cast<std::uint64_t>(morc->get("log_flushes")));
    // Stamps carry the cycle of the core being stepped, and cores
    // interleave within a step quantum, so the stream is only
    // quasi-ordered: small per-quantum jitter is expected, global
    // time must still advance.
    ASSERT_FALSE(morc->trace.events.empty());
    EXPECT_GT(morc->trace.events.back().cycles,
              morc->trace.events.front().cycles);
}

TEST(TelemetryDeterminism, TelemetryOffLeavesReportUntouched)
{
    // The whole layer must be invisible when disabled: a telemetry-off
    // run serializes without a "series" section and records no trace.
    sim::SystemConfig cfg;
    cfg.scheme = sim::Scheme::Morc;
    cfg.llcBytesPerCore = 64 * 1024;
    cfg.ratioSampleInterval = 10'000;
    sim::System sys(cfg, {trace::resolveWorkload("gcc")});
    const sim::RunResult r = sys.run(kInstr, kWarmup);
    EXPECT_TRUE(r.series.empty());
    EXPECT_TRUE(r.trace.empty());
    stats::RunRecord rec;
    rec.series = r.series;
    stats::Report rep;
    rep.runs.push_back(rec);
    EXPECT_EQ(rep.toJson().find("\"series\""), std::string::npos);
}

} // namespace
} // namespace morc
