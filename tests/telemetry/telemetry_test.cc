/**
 * @file
 * Unit tests for the telemetry layer: the epoch sampler's boundary
 * arithmetic (the determinism-critical part), the flight-recorder ring
 * tracer, and the Chrome trace-event export shape.
 */

#include <gtest/gtest.h>

#include <string>

#include "telemetry/telemetry.hh"
#include "telemetry/tracer.hh"

namespace morc {
namespace {

/* ------------------------------------------------------------------ */
/* Registry / epoch sampler                                           */
/* ------------------------------------------------------------------ */

TEST(TelemetryRegistry, SamplesAtEpochBoundariesOnly)
{
    telemetry::Registry reg(100);
    std::vector<Cycles> sampledAt;
    reg.gauge("g", [&sampledAt](Cycles now) {
        sampledAt.push_back(now);
        return static_cast<double>(now);
    });
    reg.advanceTo(99); // before the first boundary
    EXPECT_EQ(reg.samples(), 0u);
    reg.advanceTo(100); // exactly on it
    EXPECT_EQ(reg.samples(), 1u);
    reg.advanceTo(150); // between boundaries: no new sample
    EXPECT_EQ(reg.samples(), 1u);
    reg.advanceTo(200);
    EXPECT_EQ(reg.samples(), 2u);
    EXPECT_EQ(sampledAt, (std::vector<Cycles>{100, 200}));
}

TEST(TelemetryRegistry, MultiEpochJumpRecordsEveryCrossedBoundary)
{
    // The sweep driver advances in quanta that can skip several epochs;
    // each crossed boundary must still get its own sample, evaluated
    // *at the boundary cycle*, or series would depend on quantum size.
    telemetry::Registry reg(10);
    std::vector<Cycles> sampledAt;
    reg.counter("c", [&sampledAt](Cycles now) {
        sampledAt.push_back(now);
        return 1.0;
    });
    reg.advanceTo(35);
    EXPECT_EQ(reg.samples(), 3u);
    EXPECT_EQ(sampledAt, (std::vector<Cycles>{10, 20, 30}));
}

TEST(TelemetryRegistry, CapacityOverflowCountsDroppedEpochs)
{
    telemetry::Registry reg(10, 2);
    reg.gauge("g", [](Cycles) { return 1.0; });
    reg.advanceTo(50); // boundaries 10..50: 2 recorded, 3 dropped
    EXPECT_EQ(reg.samples(), 2u);
    EXPECT_EQ(reg.droppedEpochs(), 3u);
    const telemetry::SeriesSet s = reg.snapshot();
    ASSERT_EQ(s.series.size(), 1u);
    EXPECT_EQ(s.series[0].values.size(), 2u);
    EXPECT_EQ(s.droppedEpochs, 3u);
}

TEST(TelemetryRegistry, RestartDropsSamplesAndKeepsProbes)
{
    telemetry::Registry reg(10);
    reg.gauge("g", [](Cycles now) { return static_cast<double>(now); });
    reg.advanceTo(25);
    ASSERT_EQ(reg.samples(), 2u);
    reg.restart(); // end-of-warm-up rebase
    EXPECT_EQ(reg.samples(), 0u);
    EXPECT_EQ(reg.numProbes(), 1u);
    reg.advanceTo(10);
    const telemetry::SeriesSet s = reg.snapshot();
    ASSERT_EQ(s.samples, 1u);
    EXPECT_DOUBLE_EQ(s.series[0].values[0], 10.0);
}

TEST(TelemetryRegistry, SnapshotPreservesRegistrationOrderAndKinds)
{
    telemetry::Registry reg(10);
    reg.counter("b_counter", [](Cycles) { return 2.0; });
    reg.gauge("a_gauge", [](Cycles) { return 1.0; });
    reg.advanceTo(10);
    const telemetry::SeriesSet s = reg.snapshot();
    ASSERT_EQ(s.series.size(), 2u);
    EXPECT_EQ(s.series[0].name, "b_counter");
    EXPECT_EQ(s.series[0].kind, telemetry::ProbeKind::Counter);
    EXPECT_EQ(s.series[1].name, "a_gauge");
    EXPECT_EQ(s.series[1].kind, telemetry::ProbeKind::Gauge);
    EXPECT_DOUBLE_EQ(s.series[0].values[0], 2.0);
    EXPECT_DOUBLE_EQ(s.series[1].values[0], 1.0);
}

TEST(TelemetryRegistry, EmptySeriesSetSemantics)
{
    telemetry::SeriesSet s;
    EXPECT_TRUE(s.empty()); // epochCycles == 0
    telemetry::Registry reg(10);
    EXPECT_TRUE(reg.snapshot().empty()); // no probes registered
    reg.gauge("g", [](Cycles) { return 0.0; });
    EXPECT_FALSE(reg.snapshot().empty()); // probes, even with 0 samples
}

/* ------------------------------------------------------------------ */
/* Tracer ring buffer                                                 */
/* ------------------------------------------------------------------ */

TEST(Tracer, RecordsStampedEventsOnNamedTracks)
{
    telemetry::Tracer tr(8);
    const std::uint16_t llc = tr.track("llc");
    const std::uint16_t noc = tr.track("noc");
    EXPECT_EQ(tr.track("llc"), llc); // lookup, not re-registration
    tr.setNow(42);
    tr.record(telemetry::EventKind::LogFlush, llc, 3, 17);
    tr.setNow(50);
    tr.record(telemetry::EventKind::NocStall, noc, 1, 99);
    const telemetry::TraceBuffer buf = tr.snapshot();
    ASSERT_EQ(buf.events.size(), 2u);
    EXPECT_EQ(buf.tracks, (std::vector<std::string>{"llc", "noc"}));
    EXPECT_EQ(buf.events[0].cycles, 42u);
    EXPECT_EQ(buf.events[0].kind, telemetry::EventKind::LogFlush);
    EXPECT_EQ(buf.events[0].a0, 3u);
    EXPECT_EQ(buf.events[0].a1, 17u);
    EXPECT_EQ(buf.events[1].track, noc);
    EXPECT_EQ(buf.countKind(telemetry::EventKind::LogFlush), 1u);
    EXPECT_EQ(buf.countKind(telemetry::EventKind::LogReuse), 0u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDropped)
{
    telemetry::Tracer tr(4);
    const std::uint16_t t = tr.track("llc");
    for (Cycles c = 1; c <= 6; c++) {
        tr.setNow(c * 10);
        tr.record(telemetry::EventKind::LogFlush, t, c, 0);
    }
    EXPECT_EQ(tr.recorded(), 6u);
    EXPECT_EQ(tr.dropped(), 2u);
    const telemetry::TraceBuffer buf = tr.snapshot();
    ASSERT_EQ(buf.events.size(), 4u);
    // The two *oldest* events were overwritten; the rest are in order.
    EXPECT_EQ(buf.events.front().cycles, 30u);
    EXPECT_EQ(buf.events.back().cycles, 60u);
    EXPECT_EQ(buf.dropped, 2u);
    EXPECT_FALSE(buf.empty());
}

TEST(Tracer, ClearKeepsTracksAndCycleStamp)
{
    telemetry::Tracer tr(4);
    const std::uint16_t t = tr.track("llc");
    tr.setNow(100);
    tr.record(telemetry::EventKind::LogFlush, t);
    tr.clear(); // end-of-warm-up rebase
    EXPECT_EQ(tr.recorded(), 0u);
    EXPECT_EQ(tr.dropped(), 0u);
    EXPECT_EQ(tr.now(), 100u);
    const telemetry::TraceBuffer buf = tr.snapshot();
    EXPECT_TRUE(buf.events.empty());
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.tracks, (std::vector<std::string>{"llc"}));
}

TEST(Tracer, EventNamesAreStable)
{
    // Exported trace names are an interface (Perfetto queries, the CI
    // gate); renames must be deliberate.
    using telemetry::EventKind;
    using telemetry::eventName;
    EXPECT_STREQ(eventName(EventKind::LogFlush), "log_flush");
    EXPECT_STREQ(eventName(EventKind::LogReuse), "log_reuse");
    EXPECT_STREQ(eventName(EventKind::FudgeNearTie), "fudge_near_tie");
    EXPECT_STREQ(eventName(EventKind::LmtConflictEvict),
                 "lmt_conflict_evict");
    EXPECT_STREQ(eventName(EventKind::WritebackBurst), "writeback_burst");
    EXPECT_STREQ(eventName(EventKind::NocStall), "noc_stall");
}

/* ------------------------------------------------------------------ */
/* Chrome trace-event export                                          */
/* ------------------------------------------------------------------ */

TEST(ChromeTrace, ExportContainsMetadataAndInstantEvents)
{
    telemetry::Tracer tr(8);
    const std::uint16_t llc = tr.track("llc");
    tr.setNow(1234);
    tr.record(telemetry::EventKind::LogFlush, llc, 7, 3);
    const std::string json = telemetry::chromeTraceJson(
        {{"fig6/gcc/MORC", tr.snapshot()}});
    // Shape, not full parse: the wrapper object, process/thread naming
    // metadata, and the stamped instant event.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("fig6/gcc/MORC"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"llc\""), std::string::npos);
    EXPECT_NE(json.find("\"log_flush\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1234"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(ChromeTrace, MultipleRunsGetDistinctPids)
{
    telemetry::Tracer a(4), b(4);
    a.track("llc");
    b.track("llc");
    const std::string json = telemetry::chromeTraceJson(
        {{"run_a", a.snapshot()}, {"run_b", b.snapshot()}});
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
    EXPECT_NE(json.find("run_a"), std::string::npos);
    EXPECT_NE(json.find("run_b"), std::string::npos);
}

TEST(ChromeTrace, DeterministicForIdenticalInput)
{
    telemetry::Tracer tr(8);
    const std::uint16_t t = tr.track("llc");
    tr.setNow(5);
    tr.record(telemetry::EventKind::FudgeNearTie, t, 1, 2);
    const auto buf = tr.snapshot();
    EXPECT_EQ(telemetry::chromeTraceJson({{"r", buf}}),
              telemetry::chromeTraceJson({{"r", buf}}));
}

} // namespace
} // namespace morc
