/**
 * @file
 * Tests for trace record/replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "snapshot/snapshot.hh"
#include "trace/trace_file.hh"

namespace morc {
namespace trace {
namespace {

TEST(TraceFile, RecordSaveLoadRoundTrip)
{
    const auto spec = findBenchmark("gcc");
    ThreadTrace source(spec, 0);
    TraceFile recorded = TraceFile::record(source, 5000);
    ASSERT_EQ(recorded.refs().size(), 5000u);

    const std::string path = "/tmp/morc_trace_test.bin";
    ASSERT_TRUE(recorded.save(path));
    const TraceFile loaded = TraceFile::load(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.refs().size(), recorded.refs().size());
    for (std::size_t i = 0; i < loaded.refs().size(); i++) {
        ASSERT_EQ(loaded.refs()[i].addr, recorded.refs()[i].addr);
        ASSERT_EQ(loaded.refs()[i].write, recorded.refs()[i].write);
        ASSERT_EQ(loaded.refs()[i].gap, recorded.refs()[i].gap);
    }
}

TEST(TraceFile, LoadRejectsGarbage)
{
    const std::string path = "/tmp/morc_trace_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_TRUE(TraceFile::load(path).empty());
    std::remove(path.c_str());
    EXPECT_TRUE(TraceFile::load("/nonexistent/path").empty());
}

TEST(TraceFile, SavedFileCarriesV2HeaderAndChecksum)
{
    const auto spec = findBenchmark("gcc");
    ThreadTrace source(spec, 0);
    const TraceFile recorded = TraceFile::record(source, 100);
    const std::string path = "/tmp/morc_trace_v2.bin";
    ASSERT_TRUE(recorded.save(path));

    std::vector<std::uint8_t> buf;
    ASSERT_TRUE(snap::readFile(path, buf));
    ASSERT_EQ(std::memcmp(buf.data(), "MORCTRC2", 8), 0);
    // header(24) + 100 records of 16 bytes + CRC(4)
    EXPECT_EQ(buf.size(), 24u + 100u * 16u + 4u);
    std::remove(path.c_str());
}

TEST(TraceFile, LoadRejectsCorruptAndTruncatedV2)
{
    const auto spec = findBenchmark("gcc");
    ThreadTrace source(spec, 0);
    const TraceFile recorded = TraceFile::record(source, 64);
    const std::string path = "/tmp/morc_trace_corrupt.bin";
    ASSERT_TRUE(recorded.save(path));
    std::vector<std::uint8_t> good;
    ASSERT_TRUE(snap::readFile(path, good));

    const auto write = [&path](const std::vector<std::uint8_t> &b) {
        return snap::atomicWriteFile(path, b.data(), b.size());
    };

    // Flip one record byte: the CRC must catch it.
    std::vector<std::uint8_t> bad = good;
    bad[30] ^= 0x01;
    ASSERT_TRUE(write(bad));
    EXPECT_TRUE(TraceFile::load(path).empty());

    // Truncate: exact-size check must catch it.
    bad = good;
    bad.resize(bad.size() - 5);
    ASSERT_TRUE(write(bad));
    EXPECT_TRUE(TraceFile::load(path).empty());

    // Unknown future version with a re-sealed CRC.
    bad = good;
    bad[8] = 9;
    const std::uint32_t crc = snap::crc32(bad.data(), bad.size() - 4);
    for (unsigned i = 0; i < 4; i++)
        bad[bad.size() - 4 + i] =
            static_cast<std::uint8_t>(crc >> (8 * i));
    ASSERT_TRUE(write(bad));
    EXPECT_TRUE(TraceFile::load(path).empty());

    // The pristine bytes still load.
    ASSERT_TRUE(write(good));
    EXPECT_EQ(TraceFile::load(path).refs().size(), 64u);
    std::remove(path.c_str());
}

TEST(TraceFile, LoadsLegacyV1Format)
{
    const auto spec = findBenchmark("astar");
    ThreadTrace source(spec, 0);
    const TraceFile recorded = TraceFile::record(source, 32);

    // Hand-write the v1 layout: magic, u64 count, 16-byte records — no
    // version, no endian tag, no checksum.
    std::vector<std::uint8_t> buf;
    const char magic[8] = {'M', 'O', 'R', 'C', 'T', 'R', 'C', '1'};
    for (char c : magic)
        buf.push_back(static_cast<std::uint8_t>(c));
    const std::uint64_t count = recorded.refs().size();
    for (unsigned i = 0; i < 8; i++)
        buf.push_back(static_cast<std::uint8_t>(count >> (8 * i)));
    for (const MemRef &r : recorded.refs()) {
        for (unsigned i = 0; i < 8; i++)
            buf.push_back(static_cast<std::uint8_t>(r.addr >> (8 * i)));
        for (unsigned i = 0; i < 4; i++)
            buf.push_back(static_cast<std::uint8_t>(r.gap >> (8 * i)));
        buf.push_back(r.write ? 1 : 0);
        buf.push_back(0);
        buf.push_back(0);
        buf.push_back(0);
    }
    const std::string path = "/tmp/morc_trace_v1.bin";
    ASSERT_TRUE(snap::atomicWriteFile(path, buf.data(), buf.size()));

    const TraceFile loaded = TraceFile::load(path);
    std::remove(path.c_str());
    ASSERT_EQ(loaded.refs().size(), recorded.refs().size());
    for (std::size_t i = 0; i < loaded.refs().size(); i++) {
        EXPECT_EQ(loaded.refs()[i].addr, recorded.refs()[i].addr);
        EXPECT_EQ(loaded.refs()[i].write, recorded.refs()[i].write);
        EXPECT_EQ(loaded.refs()[i].gap, recorded.refs()[i].gap);
    }
}

#ifndef NDEBUG
TEST(TraceFileDeathTest, ReplayingEmptyTraceIsAnError)
{
    // A failed load yields an empty TraceFile; replaying it would
    // otherwise divide by zero. The check names the likely cause.
    const auto spec = findBenchmark("gcc");
    const TraceFile empty;
    EXPECT_DEATH(
        { ReplayTrace replay(empty, spec.data); },
        "cannot replay an empty trace");
}
#endif

TEST(TraceFile, ReplayMatchesRecording)
{
    const auto spec = findBenchmark("astar");
    ThreadTrace source(spec, 0);
    TraceFile recorded = TraceFile::record(source, 1000);
    ReplayTrace replay(recorded, spec.data);
    for (int pass = 0; pass < 2; pass++) { // cycles at the end
        for (std::size_t i = 0; i < 1000; i++) {
            const MemRef r = replay.next();
            ASSERT_EQ(r.addr, recorded.refs()[i].addr);
        }
    }
}

TEST(TraceFile, ReplayValuesAreDeterministic)
{
    const auto spec = findBenchmark("soplex");
    ThreadTrace source(spec, 0);
    ReplayTrace replay(TraceFile::record(source, 10), spec.data);
    EXPECT_EQ(replay.values().line(77, 0),
              ValueModel(spec.data).line(77, 0));
}

} // namespace
} // namespace trace
} // namespace morc
