/**
 * @file
 * Tests for trace record/replay.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/trace_file.hh"

namespace morc {
namespace trace {
namespace {

TEST(TraceFile, RecordSaveLoadRoundTrip)
{
    const auto spec = findBenchmark("gcc");
    ThreadTrace source(spec, 0);
    TraceFile recorded = TraceFile::record(source, 5000);
    ASSERT_EQ(recorded.refs().size(), 5000u);

    const std::string path = "/tmp/morc_trace_test.bin";
    ASSERT_TRUE(recorded.save(path));
    const TraceFile loaded = TraceFile::load(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.refs().size(), recorded.refs().size());
    for (std::size_t i = 0; i < loaded.refs().size(); i++) {
        ASSERT_EQ(loaded.refs()[i].addr, recorded.refs()[i].addr);
        ASSERT_EQ(loaded.refs()[i].write, recorded.refs()[i].write);
        ASSERT_EQ(loaded.refs()[i].gap, recorded.refs()[i].gap);
    }
}

TEST(TraceFile, LoadRejectsGarbage)
{
    const std::string path = "/tmp/morc_trace_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_TRUE(TraceFile::load(path).empty());
    std::remove(path.c_str());
    EXPECT_TRUE(TraceFile::load("/nonexistent/path").empty());
}

TEST(TraceFile, ReplayMatchesRecording)
{
    const auto spec = findBenchmark("astar");
    ThreadTrace source(spec, 0);
    TraceFile recorded = TraceFile::record(source, 1000);
    ReplayTrace replay(recorded, spec.data);
    for (int pass = 0; pass < 2; pass++) { // cycles at the end
        for (std::size_t i = 0; i < 1000; i++) {
            const MemRef r = replay.next();
            ASSERT_EQ(r.addr, recorded.refs()[i].addr);
        }
    }
}

TEST(TraceFile, ReplayValuesAreDeterministic)
{
    const auto spec = findBenchmark("soplex");
    ThreadTrace source(spec, 0);
    ReplayTrace replay(TraceFile::record(source, 10), spec.data);
    EXPECT_EQ(replay.values().line(77, 0),
              ValueModel(spec.data).line(77, 0));
}

} // namespace
} // namespace trace
} // namespace morc
