/**
 * @file
 * Tests for the synthetic workload substrate.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "trace/workload.hh"

namespace morc {
namespace trace {
namespace {

TEST(ValueModel, DeterministicPerAddressAndVersion)
{
    const DataProfile p{};
    ValueModel m(p);
    EXPECT_EQ(m.line(42, 0), m.line(42, 0));
    EXPECT_EQ(m.line(42, 3), m.line(42, 3));
    // Different lines and versions diverge (overwhelmingly likely).
    EXPECT_FALSE(m.line(42, 0) == m.line(43, 0));
    EXPECT_FALSE(m.line(42, 0) == m.line(42, 1));
}

TEST(ValueModel, SharedSeedSharesValues)
{
    DataProfile a{}, b{};
    a.seed = b.seed = 777;
    ValueModel ma(a), mb(b);
    EXPECT_EQ(ma.line(1000, 0), mb.line(1000, 0));
}

TEST(ValueModel, ZeroLineFraction)
{
    DataProfile p{};
    p.zeroLineFrac = 0.5;
    ValueModel m(p);
    unsigned zeros = 0;
    for (std::uint64_t l = 0; l < 2000; l++) {
        if (m.line(l, 0).isZero())
            zeros++;
    }
    EXPECT_NEAR(zeros / 2000.0, 0.5, 0.06);
}

TEST(ValueModel, ZeroWordFraction)
{
    DataProfile p{};
    p.zeroLineFrac = 0.0;
    p.zeroWordFrac = 0.4;
    p.poolWordFrac = 0.0;
    p.smallWordFrac = 0.0;
    p.chunk256Frac = 0.0;
    p.chunk128Frac = 0.0;
    ValueModel m(p);
    std::uint64_t zero_words = 0, total = 0;
    for (std::uint64_t l = 0; l < 2000; l++) {
        const CacheLine line = m.line(l, 0);
        for (unsigned w = 0; w < kWordsPerLine; w++) {
            total++;
            if (line.word32(w) == 0)
                zero_words++;
        }
    }
    EXPECT_NEAR(static_cast<double>(zero_words) / total, 0.4, 0.05);
}

TEST(ValueModel, PoolDuplicationIsRegionScoped)
{
    DataProfile p{};
    p.zeroLineFrac = 0;
    p.zeroWordFrac = 0;
    p.smallWordFrac = 0;
    p.poolWordFrac = 1.0;
    p.globalPoolFrac = 0.0;
    p.regionPoolSize = 32;
    p.regionBytes = 4096;
    ValueModel m(p);
    // Lines within one region share <=32 distinct words.
    std::set<std::uint32_t> within;
    for (std::uint64_t l = 0; l < 64; l++) { // one 4 KB region
        const CacheLine line = m.line(l, 0);
        for (unsigned w = 0; w < kWordsPerLine; w++)
            within.insert(line.word32(w));
    }
    EXPECT_LE(within.size(), 32u);
    // Distant regions use different slices.
    std::set<std::uint32_t> across = within;
    for (std::uint64_t l = 1000000; l < 1000064; l++) {
        const CacheLine line = m.line(l, 0);
        for (unsigned w = 0; w < kWordsPerLine; w++)
            across.insert(line.word32(w));
    }
    EXPECT_GT(across.size(), within.size());
}

TEST(ValueModel, GlobalPoolSharedAcrossRegions)
{
    DataProfile p{};
    p.zeroLineFrac = 0;
    p.zeroWordFrac = 0;
    p.smallWordFrac = 0;
    p.poolWordFrac = 1.0;
    p.globalPoolFrac = 1.0;
    p.globalPoolSize = 16;
    ValueModel m(p);
    std::set<std::uint32_t> distinct;
    for (std::uint64_t l = 0; l < 10000; l += 97) {
        const CacheLine line = m.line(l, 0);
        for (unsigned w = 0; w < kWordsPerLine; w++)
            distinct.insert(line.word32(w));
    }
    EXPECT_LE(distinct.size(), 16u);
}

TEST(ValueModel, ChunkPoolRepeats256BitChunks)
{
    DataProfile p{};
    p.zeroLineFrac = 0;
    p.chunk256Frac = 1.0;
    p.chunk256Pool = 8;
    ValueModel m(p);
    // Chunk vocabularies are region-scoped: stay within one region.
    std::set<std::string> chunks;
    const std::uint64_t lines_per_region = p.regionBytes / kLineSize;
    for (std::uint64_t l = 0; l < lines_per_region; l++) {
        const CacheLine line = m.line(l, 0);
        for (unsigned c = 0; c < 2; c++) {
            chunks.emplace(
                reinterpret_cast<const char *>(line.bytes.data()) + c * 32,
                32);
        }
    }
    EXPECT_LE(chunks.size(), 8u);
    // A distant region uses a different chunk vocabulary.
    std::set<std::string> other = chunks;
    for (std::uint64_t l = 100 * lines_per_region;
         l < 101 * lines_per_region; l++) {
        const CacheLine line = m.line(l, 0);
        for (unsigned c = 0; c < 2; c++) {
            other.emplace(
                reinterpret_cast<const char *>(line.bytes.data()) + c * 32,
                32);
        }
    }
    EXPECT_GT(other.size(), chunks.size());
}

TEST(ValueModel, StoreChurnPreservesSomeWords)
{
    DataProfile p{};
    p.zeroLineFrac = 0;
    p.storeChurn = 0.3;
    ValueModel m(p);
    unsigned preserved = 0, total = 0;
    for (std::uint64_t l = 0; l < 200; l++) {
        const CacheLine v0 = m.line(l, 0);
        const CacheLine v1 = m.line(l, 1);
        for (unsigned w = 0; w < kWordsPerLine; w++) {
            total++;
            if (v0.word32(w) == v1.word32(w))
                preserved++;
        }
    }
    EXPECT_GT(static_cast<double>(preserved) / total, 0.5);
}

TEST(ThreadTrace, DeterministicStream)
{
    const BenchmarkSpec &spec = findBenchmark("gcc");
    ThreadTrace a(spec, 0), b(spec, 0);
    for (int i = 0; i < 1000; i++) {
        const MemRef ra = a.next(), rb = b.next();
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(ra.write, rb.write);
        ASSERT_EQ(ra.gap, rb.gap);
    }
}

TEST(ThreadTrace, AddressSpaceIsolation)
{
    const BenchmarkSpec &spec = findBenchmark("astar");
    ThreadTrace t0(spec, 0), t5(spec, 5);
    EXPECT_NE(t0.addrBase(), t5.addrBase());
    for (int i = 0; i < 1000; i++) {
        EXPECT_EQ(t0.next().addr >> 40, t0.addrBase() >> 40);
        EXPECT_EQ(t5.next().addr >> 40, t5.addrBase() >> 40);
    }
}

TEST(ThreadTrace, MemFracControlsGaps)
{
    BenchmarkSpec spec = findBenchmark("gcc");
    spec.access.memFrac = 0.25;
    ThreadTrace t(spec, 0);
    std::uint64_t instrs = 0, refs = 0;
    for (int i = 0; i < 50000; i++) {
        const MemRef r = t.next();
        instrs += r.gap + 1;
        refs++;
    }
    EXPECT_NEAR(static_cast<double>(refs) / instrs, 0.25, 0.02);
}

TEST(ThreadTrace, StoreFraction)
{
    BenchmarkSpec spec = findBenchmark("gcc");
    spec.access.storeFrac = 0.3;
    ThreadTrace t(spec, 0);
    unsigned writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; i++)
        writes += t.next().write ? 1 : 0;
    EXPECT_NEAR(writes / static_cast<double>(n), 0.3, 0.02);
}

TEST(ThreadTrace, FootprintStaysWithinWorkingSet)
{
    BenchmarkSpec spec = findBenchmark("dealII");
    ThreadTrace t(spec, 0);
    for (int i = 0; i < 100000; i++) {
        const Addr off = t.next().addr - t.addrBase();
        ASSERT_LT(off, spec.access.wsBytes);
    }
}

TEST(Registry, AllBaseBenchmarksPresent)
{
    EXPECT_EQ(spec2006().size(), 28u);
    std::set<std::string> names;
    for (const auto &b : spec2006())
        names.insert(b.name);
    EXPECT_EQ(names.size(), 28u);
    EXPECT_TRUE(names.count("gcc"));
    EXPECT_TRUE(names.count("zeusmp"));
    EXPECT_TRUE(names.count("cactusADM"));
}

TEST(Registry, Figure6Has54Workloads)
{
    const auto w = figure6Workloads();
    EXPECT_EQ(w.size(), 54u);
    EXPECT_EQ(w[0].name, "astar");
    EXPECT_EQ(w[1].name, "astar_1");
    EXPECT_EQ(w.back().name, "zeusmp");
}

TEST(Registry, VariantsDifferButShareSeed)
{
    const BenchmarkSpec base = findBenchmark("bzip2");
    const BenchmarkSpec v1 = makeVariant(base, 1);
    const BenchmarkSpec v2 = makeVariant(base, 2);
    EXPECT_EQ(v1.name, "bzip2_1");
    EXPECT_EQ(v1.data.seed, base.data.seed);
    EXPECT_NE(v1.access.wsBytes, v2.access.wsBytes);
    // Deterministic.
    EXPECT_EQ(makeVariant(base, 1).access.wsBytes, v1.access.wsBytes);
}

TEST(Registry, ResolveWorkloadHandlesVariants)
{
    EXPECT_EQ(resolveWorkload("gcc").name, "gcc");
    EXPECT_EQ(resolveWorkload("gcc_3").name, "gcc_3");
}

TEST(Registry, Table6Structure)
{
    const auto &t6 = table6Workloads();
    ASSERT_EQ(t6.size(), 12u);
    for (const auto &mp : t6) {
        EXPECT_EQ(mp.programs.size(), 16u) << mp.name;
        for (const auto &p : mp.programs)
            resolveWorkload(p); // must not abort
    }
    EXPECT_EQ(t6[0].name, "M0");
    EXPECT_EQ(t6[4].name, "S0");
    for (const auto &p : t6[5].programs)
        EXPECT_EQ(p, "bzip2"); // S1 replicates bzip2
}

} // namespace
} // namespace trace
} // namespace morc
