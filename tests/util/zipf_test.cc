/**
 * @file
 * Statistical acceptance tests for the Zipf sampler.
 *
 * Every workload knob in the KV subsystem (key popularity, token
 * vocabularies, value pools) leans on ZipfSampler actually producing
 * the advertised 1/(i+1)^theta skew; a subtly broken inverse-CDF would
 * silently shift every hit rate in the study. These tests run a
 * chi-squared goodness-of-fit of observed rank frequencies against the
 * analytic pmf — with tail ranks merged so every bin keeps an expected
 * count >= 5 — and accept below the 99.9% critical value
 * (Wilson-Hilferty approximation). Seeds are fixed, so the tests are
 * deterministic, not flaky.
 *
 * A negative control (uniform draws tested against a skewed pmf must
 * FAIL the fit) proves the test has the power to reject, and the
 * hashed variant is additionally pinned as a pure function.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hh"
#include "util/zipf.hh"

namespace morc {
namespace {

/** Analytic Zipf pmf over ranks [0, n). */
std::vector<double>
zipfPmf(std::uint64_t n, double theta)
{
    std::vector<double> pmf(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; i++) {
        pmf[i] = 1.0 / std::pow(static_cast<double>(i + 1), theta);
        sum += pmf[i];
    }
    for (auto &p : pmf)
        p /= sum;
    return pmf;
}

/** 99.9% chi-squared critical value (Wilson-Hilferty). */
double
chiSquaredCritical999(double df)
{
    const double z = 3.0902; // Phi^-1(0.999)
    const double a = 2.0 / (9.0 * df);
    const double c = 1.0 - a + z * std::sqrt(a);
    return df * c * c * c;
}

struct Fit
{
    double chi2 = 0.0;
    double df = 0.0;
};

/**
 * Chi-squared statistic of @p counts against @p pmf with @p total
 * draws. Ranks are binned greedily from the head so every bin's
 * expected count is >= 5 (the classic applicability condition); the
 * trailing partial bin merges into its predecessor.
 */
Fit
chiSquared(const std::vector<std::uint64_t> &counts,
           const std::vector<double> &pmf, double total)
{
    // Greedy binning from the head; a trailing bin whose expected
    // count falls under 5 merges into its predecessor.
    std::vector<std::pair<double, double>> bins; // (observed, expected)
    double obs = 0.0, exp = 0.0;
    for (std::size_t i = 0; i < counts.size(); i++) {
        obs += static_cast<double>(counts[i]);
        exp += pmf[i] * total;
        if (exp >= 5.0) {
            bins.emplace_back(obs, exp);
            obs = exp = 0.0;
        }
    }
    if (exp > 0.0) {
        if (!bins.empty()) {
            bins.back().first += obs;
            bins.back().second += exp;
        } else {
            bins.emplace_back(obs, exp);
        }
    }
    Fit f;
    for (const auto &b : bins)
        f.chi2 += (b.first - b.second) * (b.first - b.second) / b.second;
    f.df = bins.size() > 1 ? static_cast<double>(bins.size() - 1) : 1.0;
    return f;
}

std::vector<std::uint64_t>
drawCounts(std::uint64_t n, std::uint64_t total,
           const std::function<std::uint64_t()> &next)
{
    std::vector<std::uint64_t> counts(n, 0);
    for (std::uint64_t i = 0; i < total; i++) {
        const std::uint64_t r = next();
        EXPECT_LT(r, n);
        counts[r]++;
    }
    return counts;
}

TEST(Zipf, RngSamplesFitTheAnalyticDistribution)
{
    const struct
    {
        std::uint64_t n;
        double theta;
    } cases[] = {{64, 0.6}, {1024, 0.99}, {4096, 1.2}};
    const std::uint64_t kDraws = 200'000;

    for (const auto &c : cases) {
        ZipfSampler z(c.n, c.theta);
        Rng rng(0x5eedull + c.n);
        const auto counts = drawCounts(
            c.n, kDraws, [&]() { return z.sample(rng); });
        const Fit f = chiSquared(counts, zipfPmf(c.n, c.theta),
                                 static_cast<double>(kDraws));
        EXPECT_LT(f.chi2, chiSquaredCritical999(f.df))
            << "n=" << c.n << " theta=" << c.theta
            << " chi2=" << f.chi2 << " df=" << f.df;
    }
}

TEST(Zipf, HashedSamplesFitTheAnalyticDistribution)
{
    const std::uint64_t n = 512;
    const double theta = 1.05;
    const std::uint64_t kDraws = 200'000;
    ZipfSampler z(n, theta);
    std::uint64_t i = 0;
    const auto counts = drawCounts(n, kDraws, [&]() {
        return z.sampleHashed(mix64(0x7a69, ++i));
    });
    const Fit f = chiSquared(counts, zipfPmf(n, theta),
                             static_cast<double>(kDraws));
    EXPECT_LT(f.chi2, chiSquaredCritical999(f.df))
        << "chi2=" << f.chi2 << " df=" << f.df;
}

TEST(Zipf, UniformDrawsFailTheSkewedFit)
{
    // Negative control: if uniform data passes a theta=1.2 fit, the
    // test statistic is too weak to defend anything.
    const std::uint64_t n = 256;
    const std::uint64_t kDraws = 200'000;
    Rng rng(0xfeed);
    const auto counts = drawCounts(n, kDraws, [&]() {
        return static_cast<std::uint64_t>(rng.uniform() * n) % n;
    });
    const Fit f = chiSquared(counts, zipfPmf(n, 1.2),
                             static_cast<double>(kDraws));
    EXPECT_GT(f.chi2, chiSquaredCritical999(f.df));
}

TEST(Zipf, ThetaZeroIsUniform)
{
    const std::uint64_t n = 128;
    const std::uint64_t kDraws = 200'000;
    ZipfSampler z(n, 0.0);
    Rng rng(0xcafe);
    const auto counts =
        drawCounts(n, kDraws, [&]() { return z.sample(rng); });
    const Fit f = chiSquared(counts, zipfPmf(n, 0.0),
                             static_cast<double>(kDraws));
    EXPECT_LT(f.chi2, chiSquaredCritical999(f.df));
}

TEST(Zipf, HashedVariantIsPure)
{
    ZipfSampler z(1024, 0.99);
    for (std::uint64_t h : {0ull, 1ull, 0xdeadbeefull, ~0ull}) {
        EXPECT_EQ(z.sampleHashed(h), z.sampleHashed(h));
        EXPECT_LT(z.sampleHashed(h), 1024u);
    }
    // Head ranks must dominate tail ranks.
    ZipfSampler skew(64, 1.2);
    Rng rng(42);
    std::uint64_t head = 0, tail = 0;
    for (int i = 0; i < 20'000; i++) {
        const std::uint64_t r = skew.sample(rng);
        if (r == 0)
            head++;
        if (r == 63)
            tail++;
    }
    EXPECT_GT(head, 10 * (tail + 1));
}

} // namespace
} // namespace morc
