#!/usr/bin/env bash
# Determinism-hazard lint.
#
# The whole point of this reproduction is bit-identical results across
# runs and platforms (golden stats, stableSeed-driven sweeps), so the
# simulator core must never consult ambient entropy or wall-clock time,
# and report-producing code must never iterate unordered containers.
# This script greps for the hazard patterns and fails loudly; it is the
# `lint` CMake target and a CI job. Exit 0 = clean.
#
# Suppress a deliberate exception with a `lint-ok: <reason>` comment on
# the offending line.

set -u
cd "$(dirname "$0")/.."

fail=0

report() {
    # $1 = rule name, $2 = matches (grep -n output)
    if [ -n "$2" ]; then
        echo "lint: ${1}:" >&2
        echo "$2" | sed 's/^/  /' >&2
        fail=1
    fi
}

filter_ok() {
    # Drop suppressed lines and pure comment lines (grep output is
    # path:line:text, so the text starts after the second colon).
    grep -v 'lint-ok:' | grep -vE '^[^:]+:[0-9]+:[[:space:]]*(//|/?\*)' \
        || true
}

# --- Rule 1: no ambient randomness in simulator or bench code. -------
# All randomness must flow through util/rng.hh (splitmix64 / xoshiro)
# seeded from sweep::stableSeed, or results differ run to run.
matches=$(grep -rnE '\b(rand|srand|random_device|mt19937)\s*\(|#include\s*<random>' \
    src bench --include='*.cc' --include='*.hh' --include='*.cpp' \
    | filter_ok)
report "ambient randomness (use util/rng.hh + sweep::stableSeed)" \
    "$matches"

# --- Rule 2: no clock reads in src/. --------------------------------
# Simulated time is cycle counts; host-clock reads in the model would
# leak timing nondeterminism into results. Bench harness timing lives
# in bench/ and is exempt. The sweep pool's condition-variable timeout
# uses a duration constant, not a clock read, so it does not match.
matches=$(grep -rnE '\b(time|clock|gettimeofday|clock_gettime)\s*\(|std::chrono::(system_clock|steady_clock|high_resolution_clock)::now' \
    src --include='*.cc' --include='*.hh' \
    | filter_ok)
report "host clock read in src/ (simulated time is cycle counts)" \
    "$matches"

# --- Rule 3: no unordered-container iteration in report code. -------
# stats/ and sweep/ serialize results; iterating an unordered container
# there would make report ordering depend on hash seeds / libstdc++
# versions. Use std::map / std::set / sorted vectors.
matches=$(grep -rnE 'std::unordered_(map|set|multimap|multiset)' \
    src/stats src/sweep --include='*.cc' --include='*.hh' \
    | filter_ok)
report "unordered container in report-producing code (order is UB)" \
    "$matches"

# --- Rule 4: no bare assert() in src/. ------------------------------
# Bare asserts vanish under NDEBUG (the default RelWithDebInfo build)
# and carry no context. Use MORC_CHECK / MORC_DCHECK / MORC_CHECK_FAIL
# from check/check.hh.
matches=$(grep -rnE '(^|[^_[:alnum:]])assert\s*\(' \
    src --include='*.cc' --include='*.hh' \
    | grep -v 'static_assert' | filter_ok)
report "bare assert() in src/ (use MORC_CHECK from check/check.hh)" \
    "$matches"

if [ "$fail" -eq 0 ]; then
    echo "lint: clean"
fi
exit "$fail"
