#!/usr/bin/env bash
# Determinism-hazard lint: thin wrapper around tools/morc_analyze.py.
#
# The grep rules that used to live here (ambient randomness, host
# clocks, unordered-container iteration in report code, bare assert)
# are now checks in the comment/string-aware analyzer, which adds
# raw-sync and snapshot-completeness on top and understands per-line
# suppressions (`// morc-analyze: allow(<check>) <reason>`). This
# wrapper survives as the `lint` CMake target and CI entry point.
# Exit 0 = clean.

set -u
cd "$(dirname "$0")/.."

if ! command -v python3 > /dev/null 2>&1; then
    echo "lint: python3 not installed; skipping (CI runs it)" >&2
    exit 0
fi

exec python3 tools/morc_analyze.py --root . "$@"
