#!/usr/bin/env python3
"""morc_analyze: concurrency & determinism static analysis for MORC.

The whole point of this reproduction is byte-identical results across
runs, hosts, and --jobs counts, and the road to the parallel mesh
engine (ROADMAP item 2) adds locking to defend. This tool makes the
hazard classes lint-time errors:

  unordered-iteration-escape  loops over std::unordered_{map,set} on
                              report/stats/audit/snapshot/serialization
                              paths must go through util::sortedView()
  nondeterminism-source       ambient randomness, host-clock reads, and
                              pointer-keyed ordered containers in src/
  raw-sync                    std::mutex/std::thread & friends outside
                              src/util/sync.hh and src/sweep/pool.hh
                              (use the annotated morc::sync wrappers)
  snapshot-completeness       classes with save/restore methods whose
                              data members are mentioned in neither
                              (the "added a field, forgot the snapshot"
                              bug class)
  bare-assert                 assert() in src/ vanishes under NDEBUG;
                              use MORC_CHECK from check/check.hh

Frontend: translation units come from the build's
compile_commands.json when present (plus all headers under src/), else
a source-tree glob. Analysis itself is a comment/string-aware lexical
pass with lightweight structure recovery (function spans, class member
tables); when the libclang Python bindings are importable they are
used to confirm file discovery, but the checks do not require them, so
the gate runs identically on a container with only g++.

Suppressions: a finding is silenced by a comment on the same line or
the line directly above:

    // morc-analyze: allow(<check>[, <check>...]) <reason>

Every suppression should carry a reason; DESIGN.md §12 documents the
policy. --self-test runs the fixture suite under tests/analyze/ and
diffs the check registry against fixtures/checks.txt, so deleting a
check (or silently breaking one) fails ctest.

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import glob
import json
import os
import re
import sys

# ---------------------------------------------------------------------
# Source model: comment/string stripping + structure recovery
# ---------------------------------------------------------------------

ALLOW_RE = re.compile(r"morc-analyze:\s*allow\(([^)]*)\)")

UNORDERED_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\b")

IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

# Function-name prefixes that mark a serialization/report escape path
# outside the always-in-scope directories.
ESCAPE_FN_RE = re.compile(
    r"^(save|restore|serialize|deserialize|audit|report|dump|export|"
    r"write|print|json|summar|snapshot|chrome)", re.IGNORECASE)

# Directories whose every function is an escape path.
ESCAPE_DIRS = ("src/stats/", "src/sweep/", "src/snapshot/", "src/check/")

# Files allowed to name raw synchronization primitives.
RAW_SYNC_ALLOWED = ("src/util/sync.hh", "src/sweep/pool.hh")

SAVE_METHODS = {"save", "saveState"}
RESTORE_METHODS = {"restore", "restoreState", "load"}

CXX_KEYWORDS = {
    "if", "for", "while", "switch", "return", "else", "do", "new",
    "delete", "sizeof", "alignof", "case", "goto", "throw", "catch",
    "try", "static_assert", "using", "typedef", "template", "typename",
    "class", "struct", "enum", "union", "namespace", "public",
    "private", "protected", "friend", "operator", "const", "constexpr",
    "static", "inline", "virtual", "explicit", "noexcept", "override",
    "final", "auto", "void", "bool", "char", "int", "unsigned", "long",
    "short", "float", "double", "true", "false", "nullptr", "this",
    "break", "continue", "default", "requires", "co_return",
}


class Finding:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def render(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def strip_comments_and_strings(text):
    """Return (code, allow_by_line) where `code` is the translation
    unit with comments removed and string/char literal contents blanked
    (newlines preserved, so offsets map 1:1 to the original), and
    allow_by_line maps 1-based line numbers to the set of check names
    allowed by a morc-analyze suppression comment on that line."""
    out = []
    allow = {}
    i, n = 0, len(text)
    line = 1

    def record_allow(comment, at_line):
        for m in ALLOW_RE.finditer(comment):
            names = {c.strip() for c in m.group(1).split(",") if c.strip()}
            allow.setdefault(at_line, set()).update(names)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            record_allow(text[i:j], line)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            comment = text[i:j + 2]
            # A block comment applies where it *ends* (it may hug the
            # code line after a multi-line explanation).
            record_allow(comment, line + comment.count("\n"))
            for ch in comment:
                if ch == "\n":
                    out.append("\n")
                    line += 1
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if text[i] == "\\":
                    out.append(" ")
                    i += 2
                    continue
                if text[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                if text[i] == "\n":  # unterminated (raw string etc.)
                    out.append("\n")
                    line += 1
                    i += 1
                    break
                out.append(" ")
                i += 1
        else:
            out.append(c)
            if c == "\n":
                line += 1
            i += 1
    return "".join(out), allow


class SourceFile:
    """One analyzed file: stripped code plus recovered structure."""

    def __init__(self, path, display_path, text=None):
        self.path = path
        self.display = display_path
        raw = text if text is not None else open(
            path, encoding="utf-8", errors="replace").read()
        self.raw = raw
        self.code, self.allow = strip_comments_and_strings(raw)
        self.lines = self.code.split("\n")
        self.unordered_names = self._collect_unordered_names()
        self.functions = self._collect_functions()

    # -- unordered declarations -------------------------------------
    def _collect_unordered_names(self):
        """Names declared with an unordered container type: members,
        locals, parameters, and functions returning (refs to) one."""
        names = set()
        for m in UNORDERED_RE.finditer(self.code):
            j = self.code.find("<", m.end())
            if j < 0:
                continue
            depth, k = 1, j + 1
            while k < len(self.code) and depth > 0:
                if self.code[k] == "<":
                    depth += 1
                elif self.code[k] == ">":
                    depth -= 1
                k += 1
            # after the closing '>': cv/ref/ptr junk, then declarators
            tail = self.code[k:k + 200]
            for im in IDENT_RE.finditer(tail):
                word = im.group(0)
                if word in ("const", "volatile", "mutable"):
                    continue
                names.add(word)
                break
        return names

    # -- function spans ---------------------------------------------
    def _collect_functions(self):
        """Best-effort (name, start_offset, end_offset) for every
        function/method definition, found by matching `name (...)
        [stuff] {` before a top-level-ish brace."""
        funcs = []
        code = self.code
        for m in re.finditer(r"([A-Za-z_~][A-Za-z0-9_]*)\s*\(", code):
            name = m.group(1)
            if name in CXX_KEYWORDS:
                continue
            # find the matching ')'
            depth, k = 1, m.end()
            while k < len(code) and depth > 0:
                if code[k] == "(":
                    depth += 1
                elif code[k] == ")":
                    depth -= 1
                k += 1
            if depth != 0:
                continue
            # skip qualifiers between ')' and '{': const noexcept
            # override -> Type, template junk; bail at ';' (declaration)
            t = k
            while t < len(code):
                ch = code[t]
                if ch == "{":
                    break
                if ch in ";=":  # declaration or `= default/delete`
                    t = -1
                    break
                if ch == ")" or ch == "(":
                    # e.g. noexcept(...)  — skip balanced parens
                    if ch == "(":
                        d2 = 1
                        t += 1
                        while t < len(code) and d2 > 0:
                            if code[t] == "(":
                                d2 += 1
                            elif code[t] == ")":
                                d2 -= 1
                            t += 1
                        continue
                t += 1
            if t < 0 or t >= len(code):
                continue
            # match the function body braces
            depth, b = 1, t + 1
            while b < len(code) and depth > 0:
                if code[b] == "{":
                    depth += 1
                elif code[b] == "}":
                    depth -= 1
                b += 1
            if depth == 0:
                funcs.append((name, t, b))
        return funcs

    def enclosing_function(self, offset):
        """Innermost recovered function containing `offset`."""
        best = None
        for name, start, end in self.functions:
            if start <= offset < end:
                if best is None or start > best[1]:
                    best = (name, start, end)
        return best[0] if best else None

    def line_of(self, offset):
        return self.code.count("\n", 0, offset) + 1

    def allowed(self, line, check):
        for probe in (line, line - 1):
            if check in self.allow.get(probe, set()):
                return True
        return False


# ---------------------------------------------------------------------
# Check registry
# ---------------------------------------------------------------------

CHECKS = {}


def check(name):
    def deco(fn):
        CHECKS[name] = fn
        return fn
    return deco


def _in_src(sf):
    return sf.display.startswith("src/")


def _in_bench(sf):
    return sf.display.startswith("bench/")


# -- 1. unordered-iteration-escape ------------------------------------

RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
BEGIN_CALL_RE = re.compile(
    r"([A-Za-z_][A-Za-z0-9_:.\->]*)\s*\.\s*(?:begin|cbegin)\s*\(\s*\)")


def _last_ident(expr):
    """Last identifier component of a range expression: `c.versions`
    -> versions, `sampler_.freqs()` -> freqs, `*map_` -> map_."""
    expr = expr.strip()
    expr = re.sub(r"\(\s*\)\s*$", "", expr)  # trailing call parens
    ids = IDENT_RE.findall(expr)
    return ids[-1] if ids else None


@check("unordered-iteration-escape")
def check_unordered_iteration(sf, ctx):
    if not _in_src(sf):
        return
    always = any(sf.display.startswith(d) for d in ESCAPE_DIRS)
    names = set(sf.unordered_names)
    sibling = ctx.sibling(sf)
    if sibling is not None:
        names |= sibling.unordered_names

    def in_scope(offset):
        if always:
            return True
        fn = sf.enclosing_function(offset)
        return fn is not None and ESCAPE_FN_RE.match(fn)

    def emit(offset, target):
        line = sf.line_of(offset)
        fn = sf.enclosing_function(offset) or "?"
        yield Finding(
            sf.display, line, "unordered-iteration-escape",
            f"iteration over unordered container '{target}' in "
            f"escape path '{fn}' leaks hash order into serialized "
            f"output; route through util::sortedView() or justify "
            f"with a suppression")

    # range-for loops
    for m in RANGE_FOR_RE.finditer(sf.code):
        depth, k = 1, m.end()
        while k < len(sf.code) and depth > 0:
            if sf.code[k] == "(":
                depth += 1
            elif sf.code[k] == ")":
                depth -= 1
            k += 1
        head = sf.code[m.end():k - 1]
        if ":" not in head:
            continue
        # range expression = text after the *top-level* colon
        # (skip :: qualifiers)
        expr = None
        d = 0
        for i2, ch in enumerate(head):
            if ch in "(<[":
                d += 1
            elif ch in ")>]":
                d -= 1
            elif ch == ":" and d == 0:
                if i2 + 1 < len(head) and head[i2 + 1] == ":":
                    continue
                if i2 > 0 and head[i2 - 1] == ":":
                    continue
                expr = head[i2 + 1:]
                break
        if expr is None:
            continue
        if "sortedView" in expr:
            continue
        target = _last_ident(expr)
        if target in names and in_scope(m.start()):
            yield from emit(m.start(), target)

    # iterator loops: X.begin() on an unordered name
    for m in BEGIN_CALL_RE.finditer(sf.code):
        target = _last_ident(m.group(1))
        if target in names and in_scope(m.start()):
            yield from emit(m.start(), target)


# -- 2. nondeterminism-source -----------------------------------------

RANDOM_PATTERNS = [
    (re.compile(r"(?<![\w:])(?:rand|srand|rand_r|drand48)\s*\("),
     "libc randomness; seed util/rng.hh from sweep::stableSeed instead"),
    (re.compile(r"\bstd\s*::\s*random_device\b"),
     "std::random_device is ambient entropy; use util/rng.hh"),
    (re.compile(r"\b(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?)\b"),
     "std <random> engine; use util/rng.hh (splitmix64/xoshiro)"),
    (re.compile(r"#\s*include\s*<random>"),
     "<random> include; all randomness flows through util/rng.hh"),
]

CLOCK_PATTERNS = [
    (re.compile(r"(?<![\w:.])(?:time|clock|gettimeofday|clock_gettime)"
                r"\s*\("),
     "host clock read; simulated time is cycle counts"),
    (re.compile(r"\bstd\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock"
                r"|high_resolution_clock)\s*::\s*now\b"),
     "host clock read; simulated time is cycle counts"),
]

PTRKEY_RE = re.compile(r"\bstd\s*::\s*(map|set)\s*<([^;{}]*?)>")
THISKEY_RE = re.compile(
    r"reinterpret_cast\s*<[^>]*uintptr[^>]*>\s*\(\s*this\s*\)|"
    r"\(\s*(?:std\s*::\s*)?uintptr_t\s*\)\s*this\b")


def _first_template_arg(args):
    depth = 0
    for i, ch in enumerate(args):
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        elif ch == "," and depth == 0:
            return args[:i]
    return args


@check("nondeterminism-source")
def check_nondeterminism(sf, ctx):
    in_src, in_bench = _in_src(sf), _in_bench(sf)
    if not in_src and not in_bench:
        return

    def scan(patterns, reason_prefix=""):
        for pat, why in patterns:
            for m in pat.finditer(sf.code):
                yield Finding(sf.display, sf.line_of(m.start()),
                              "nondeterminism-source",
                              reason_prefix + why)

    # Ambient randomness is banned in src/ AND bench/ (results go in
    # reports); host clocks only in src/ (bench harness wall-timing is
    # legitimate and never feeds figure data).
    yield from scan(RANDOM_PATTERNS)
    if in_src:
        yield from scan(CLOCK_PATTERNS)

    if in_src:
        for m in PTRKEY_RE.finditer(sf.code):
            key = _first_template_arg(m.group(2)).strip()
            if key.endswith("*"):
                yield Finding(
                    sf.display, sf.line_of(m.start()),
                    "nondeterminism-source",
                    f"std::{m.group(1)} keyed by pointer '{key}': "
                    f"ASLR makes pointer order differ run to run")
        for m in THISKEY_RE.finditer(sf.code):
            yield Finding(
                sf.display, sf.line_of(m.start()),
                "nondeterminism-source",
                "this-pointer converted to an integer; pointer values "
                "are not stable across runs")


# -- 3. raw-sync ------------------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable"
    r"|condition_variable_any|thread|jthread)\b")


@check("raw-sync")
def check_raw_sync(sf, ctx):
    if not _in_src(sf):
        return
    if sf.display in RAW_SYNC_ALLOWED:
        return
    for m in RAW_SYNC_RE.finditer(sf.code):
        yield Finding(
            sf.display, sf.line_of(m.start()), "raw-sync",
            f"raw std::{m.group(1)} outside util/sync.hh; use the "
            f"annotated morc::sync wrappers so -Wthread-safety can "
            f"see the lock")


# -- 4. snapshot-completeness -----------------------------------------

CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_][A-Za-z0-9_]*)"
                      r"(?:\s+final)?\s*(?::[^{;]*)?\{")

MEMBER_SKIP_START = {
    "using", "typedef", "friend", "static", "constexpr", "enum",
    "class", "struct", "union", "template", "public", "private",
    "protected", "operator", "return",
}


def _class_bodies(sf):
    """(name, body_start, body_end) for classes/structs with bodies."""
    out = []
    for m in CLASS_RE.finditer(sf.code):
        start = m.end() - 1  # at '{'
        depth, k = 1, start + 1
        while k < len(sf.code) and depth > 0:
            if sf.code[k] == "{":
                depth += 1
            elif sf.code[k] == "}":
                depth -= 1
            k += 1
        if depth == 0:
            out.append((m.group(2), start + 1, k - 1, m.start()))
    return out


def _member_decls(sf, body_start, body_end):
    """(name, line) of non-static data members declared at class
    depth, recovered statement-by-statement."""
    code = sf.code
    members = []
    depth = 0
    stmt_start = body_start
    k = body_start
    while k < body_end:
        ch = code[k]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                stmt_start = k + 1
        elif ch == ";" and depth == 0:
            stmt = code[stmt_start:k]
            members.extend(_parse_member(sf, stmt, stmt_start))
            stmt_start = k + 1
        k += 1
    return members


BITFIELD_RE = re.compile(r":\s*\d+\s*$")


def _parse_member(sf, stmt, stmt_offset):
    s = stmt.strip()
    if not s:
        return []
    first = IDENT_RE.match(s)
    if not first or first.group(0) in MEMBER_SKIP_START:
        # access specifiers arrive glued to the next statement
        # ("public:\n  void f()"), so drop leading specifier labels
        # and retry once.
        s2 = re.sub(r"^\s*(public|private|protected)\s*:", "", s).strip()
        if s2 == s or not s2:
            return []
        s = s2
        first = IDENT_RE.match(s)
        if not first or first.group(0) in MEMBER_SKIP_START:
            return []
    if any(tok in s.split() for tok in ("static", "constexpr", "friend",
                                        "using", "typedef")):
        return []
    s = BITFIELD_RE.sub("", s)
    # Chop a default initializer: `= init` or `{init}` at top level.
    depth = 0
    for i, ch in enumerate(s):
        if ch in "<([{":
            if ch == "{" and depth == 0:
                s = s[:i]
                break
            depth += 1
        elif ch in ">)]}":
            depth -= 1
        elif ch == "=" and depth == 0:
            s = s[:i]
            break
    s = s.strip()
    if not s or s.endswith((")", ">", "&", "*", ":")):
        return []  # function decl / junk
    # Array suffix: name[3]
    s = re.sub(r"\[[^\]]*\]\s*$", "", s).strip()
    ids = IDENT_RE.findall(s)
    if len(ids) < 2:
        return []  # a lone identifier is not `type name`
    name = ids[-1]
    if name in CXX_KEYWORDS:
        return []
    # Reject function declarations: declarator directly followed by (
    m = re.search(r"\b" + re.escape(name) + r"\s*\(", stmt)
    if m:
        return []
    line = sf.line_of(stmt_offset) + stmt[:stmt.find(name)].count("\n")
    return [(name, line)]


def _method_bodies(sf, sibling, cls, body_start, body_end, wanted):
    """Concatenated bodies of `wanted` methods of class `cls`, found
    inline in the class body or out-of-line as Cls::name in this file
    or its sibling."""
    found = []
    text = ""
    # inline definitions inside the class body
    for name, fstart, fend in sf.functions:
        if name in wanted and body_start <= fstart < body_end:
            text += sf.code[fstart:fend]
            found.append(name)
    # out-of-line: Cls::name (...) { ... }
    for other in (sf, sibling):
        if other is None:
            continue
        for m in re.finditer(
                r"\b" + re.escape(cls) + r"\s*::\s*(\w+)\s*\(",
                other.code):
            name = m.group(1)
            if name not in wanted:
                continue
            for fname, fstart, fend in other.functions:
                if fname == name and fstart >= m.start() and \
                        fstart < m.end() + 4000:
                    # the span matched from the same definition header
                    text += other.code[fstart:fend]
                    found.append(name)
                    break
    return text, found


@check("snapshot-completeness")
def check_snapshot_completeness(sf, ctx):
    if not _in_src(sf):
        return
    sibling = ctx.sibling(sf)
    for cls, bstart, bend, decl_off in _class_bodies(sf):
        decl_line = sf.line_of(decl_off)
        if sf.allowed(decl_line, "snapshot-completeness"):
            continue
        save_body, saves = _method_bodies(
            sf, sibling, cls, bstart, bend, SAVE_METHODS)
        restore_body, restores = _method_bodies(
            sf, sibling, cls, bstart, bend, RESTORE_METHODS)
        if not saves or not restores:
            continue
        corpus = save_body + restore_body
        for name, line in _member_decls(sf, bstart, bend):
            if re.search(r"\b" + re.escape(name) + r"\b", corpus):
                continue
            yield Finding(
                sf.display, line, "snapshot-completeness",
                f"member '{cls}::{name}' appears in neither "
                f"{'/'.join(sorted(set(saves)))} nor "
                f"{'/'.join(sorted(set(restores)))}; snapshot it, or "
                f"suppress with a reason if it is derived state")


# -- 5. bare-assert ---------------------------------------------------

ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")


@check("bare-assert")
def check_bare_assert(sf, ctx):
    if not _in_src(sf):
        return
    for m in ASSERT_RE.finditer(sf.code):
        before = sf.code[max(0, m.start() - 7):m.start()]
        if before.endswith("static_"):
            continue
        yield Finding(
            sf.display, sf.line_of(m.start()), "bare-assert",
            "assert() vanishes under NDEBUG (the default build); use "
            "MORC_CHECK / MORC_DCHECK from check/check.hh")


# ---------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------

class Context:
    """Cross-file lookups: sibling header/source pairing."""

    def __init__(self, files_by_display):
        self.files = files_by_display

    def sibling(self, sf):
        stem, ext = os.path.splitext(sf.display)
        other = stem + (".cc" if ext == ".hh" else ".hh")
        return self.files.get(other)


def discover_files(root, build_dir):
    """Analyzed file set as display (root-relative) paths."""
    paths = set()
    cc_json = os.path.join(root, build_dir, "compile_commands.json")
    if os.path.isfile(cc_json):
        try:
            for entry in json.load(open(cc_json)):
                f = entry.get("file", "")
                rel = os.path.relpath(
                    os.path.join(entry.get("directory", root), f)
                    if not os.path.isabs(f) else f, root)
                if rel.startswith(("src/", "bench/")):
                    paths.add(rel)
        except (json.JSONDecodeError, OSError):
            pass
    for pattern in ("src/**/*.cc", "src/**/*.hh",
                    "bench/**/*.cc", "bench/**/*.hh"):
        for f in glob.glob(os.path.join(root, pattern), recursive=True):
            paths.add(os.path.relpath(f, root))
    return sorted(paths)


def analyze_files(root, rel_paths):
    files = {}
    for rel in rel_paths:
        full = os.path.join(root, rel)
        if os.path.isfile(full):
            files[rel] = SourceFile(full, rel)
    ctx = Context(files)
    findings = []
    for rel in sorted(files):
        sf = files[rel]
        for name, fn in CHECKS.items():
            for f in fn(sf, ctx) or ():
                if not sf.allowed(f.line, f.check):
                    findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    return findings


# ---------------------------------------------------------------------
# Fixture self-test
# ---------------------------------------------------------------------

def run_self_test(fixture_dir):
    """For every registered check: fire.cc must produce exactly the
    findings in fire.expected (line + check), clean.cc must produce
    none. The registry itself is diffed against checks.txt."""
    failures = []

    checks_txt = os.path.join(fixture_dir, "checks.txt")
    try:
        expected_registry = sorted(
            line.strip() for line in open(checks_txt)
            if line.strip() and not line.startswith("#"))
    except OSError:
        print(f"self-test: cannot read {checks_txt}", file=sys.stderr)
        return 2
    actual_registry = sorted(CHECKS)
    if expected_registry != actual_registry:
        failures.append(
            "check registry drifted:\n"
            f"  expected: {expected_registry}\n"
            f"  actual:   {actual_registry}\n"
            "  (update tests/analyze/fixtures/checks.txt in the same "
            "PR that adds/removes a check)")

    for name in actual_registry:
        cdir = os.path.join(fixture_dir, name)
        for role in ("fire", "clean"):
            src = os.path.join(cdir, f"{role}.cc")
            if not os.path.isfile(src):
                failures.append(f"{name}: missing fixture {src}")
                continue
            # Present the fixture as a src/ file so path-scoped checks
            # apply, and pair fire.cc/clean.cc as their own TU.
            text = open(src, encoding="utf-8").read()
            sf = SourceFile(src, f"src/fixtures/{name}/{role}.cc",
                            text=text)
            ctx = Context({sf.display: sf})
            got = sorted(
                (f.line, f.check)
                for f in (CHECKS[name](sf, ctx) or ())
                if not sf.allowed(f.line, f.check))
            if role == "clean":
                if got:
                    failures.append(
                        f"{name}/clean.cc: expected no findings, got "
                        + ", ".join(f"line {l}" for l, _ in got))
                continue
            exp_file = os.path.join(cdir, "fire.expected")
            try:
                expected = sorted(
                    (int(line.split()[0]), line.split()[1])
                    for line in open(exp_file)
                    if line.strip() and not line.startswith("#"))
            except (OSError, IndexError, ValueError):
                failures.append(f"{name}: bad or missing {exp_file}")
                continue
            if got != expected:
                failures.append(
                    f"{name}/fire.cc: findings drifted\n"
                    f"  expected: {expected}\n"
                    f"  got:      {got}")

    if failures:
        print("morc_analyze self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  - " + f.replace("\n", "\n    "), file=sys.stderr)
        return 1
    print(f"morc_analyze self-test: {len(actual_registry)} checks, "
          f"all fixtures behave")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="MORC concurrency & determinism static analysis")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("-p", "--build-dir", default="build",
                    help="build dir holding compile_commands.json")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--self-test", metavar="FIXTURE_DIR",
                    help="run the fixture suite and registry diff")
    ap.add_argument("files", nargs="*",
                    help="restrict analysis to these root-relative "
                         "files")
    args = ap.parse_args()

    if args.list_checks:
        for name in sorted(CHECKS):
            print(name)
        return 0
    if args.self_test:
        return run_self_test(args.self_test)

    root = os.path.abspath(args.root)
    rel_paths = args.files or discover_files(root, args.build_dir)
    findings = analyze_files(root, rel_paths)
    for f in findings:
        print(f.render())
    if findings:
        print(f"morc_analyze: {len(findings)} finding(s) in "
              f"{len(rel_paths)} files", file=sys.stderr)
        return 1
    print(f"morc_analyze: clean ({len(rel_paths)} files, "
          f"{len(CHECKS)} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
