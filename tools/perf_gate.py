#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON output.

Usage:
    perf_gate.py CURRENT.json BASELINE.json [--threshold 0.15]
                 [--gate PREFIX] [--reference NAME]

Compares a freshly measured benchmark report against a checked-in
baseline (bench/baselines/BENCH_compress.json). Absolute times differ
across hosts, so every gated benchmark's cpu_time is first normalized
by the same report's reference benchmark (default BM_FpcLine — the FPC
codec is untouched by the LBE hot-path work, so the ratio tracks
algorithmic regressions, not machine speed). The gate fails (exit 1)
when any gated benchmark's normalized time exceeds the baseline's by
more than the threshold (default 15%).

Regenerate the baseline after intentional performance changes:
    build/bench/bench_compressor_speed \
        --benchmark_out=bench/baselines/BENCH_compress.json \
        --benchmark_out_format=json
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Map benchmark name -> cpu_time (ns) from a google-benchmark
    JSON report, keeping only plain iteration entries (no aggregates)."""
    with open(path) as f:
        report = json.load(f)
    out = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out[b["name"]] = float(b["cpu_time"]) * scale
    return out


def main():
    ap = argparse.ArgumentParser(
        description="google-benchmark perf regression gate")
    ap.add_argument("current", help="freshly measured benchmark JSON")
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed normalized regression "
                         "(0.15 = 15%%)")
    ap.add_argument("--gate", default="BM_Lbe",
                    help="gate benchmarks whose name starts with this "
                         "prefix")
    ap.add_argument("--reference", default="BM_FpcLine",
                    help="normalization benchmark (must be in both "
                         "reports)")
    args = ap.parse_args()

    cur = load_benchmarks(args.current)
    base = load_benchmarks(args.baseline)

    for name, times in (("current", cur), ("baseline", base)):
        if args.reference not in times:
            print(f"perf gate: reference {args.reference} missing from "
                  f"{name} report", file=sys.stderr)
            return 2
        if times[args.reference] <= 0:
            print(f"perf gate: non-positive reference time in {name} "
                  f"report", file=sys.stderr)
            return 2

    gated = sorted(n for n in base if n.startswith(args.gate))
    if not gated:
        print(f"perf gate: no benchmarks match prefix {args.gate!r} in "
              f"baseline", file=sys.stderr)
        return 2

    failures = []
    print(f"perf gate: normalizing by {args.reference} "
          f"(current {cur[args.reference]:.0f} ns, "
          f"baseline {base[args.reference]:.0f} ns), "
          f"threshold +{args.threshold:.0%}")
    for name in gated:
        if name not in cur:
            failures.append(f"{name}: missing from current report")
            continue
        cur_norm = cur[name] / cur[args.reference]
        base_norm = base[name] / base[args.reference]
        ratio = cur_norm / base_norm
        verdict = "OK"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: normalized time {ratio:.2f}x baseline "
                f"(limit {1.0 + args.threshold:.2f}x)")
        print(f"  {name:<24} {cur[name]:>9.0f} ns  norm {cur_norm:6.2f} "
              f"(baseline {base_norm:6.2f})  {ratio:5.2f}x  {verdict}")

    if failures:
        print("perf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("perf gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
