#!/usr/bin/env bash
# Run clang-tidy over every source file in src/ using the compile
# database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS).
#
#   usage: tools/run_clang_tidy.sh [build-dir]
#
# When clang-tidy is not installed (the default dev container ships
# only g++) this prints a notice and exits 0 so the `tidy` CMake target
# never breaks a local build; the CI tidy job installs the tool and
# gets the real analysis. Checks and severities live in .clang-tidy.

set -u
cd "$(dirname "$0")/.."

build_dir="${1:-build}"

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "tidy: clang-tidy not installed; skipping (CI runs it)" >&2
    exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
    echo "tidy: ${build_dir}/compile_commands.json missing;" \
         "configure with cmake first" >&2
    exit 1
fi

files=$(find src -name '*.cc' | sort)

echo "tidy: $(clang-tidy --version | head -n 1)"
echo "tidy: checking $(echo "$files" | wc -l) files against ${build_dir}"

# shellcheck disable=SC2086  # word-splitting the file list is intended
clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' $files
status=$?

if [ "$status" -eq 0 ]; then
    echo "tidy: clean"
fi
exit "$status"
